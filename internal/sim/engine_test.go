package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Cycle
	for _, d := range []Cycle{5, 3, 9, 3, 0, 7} {
		d := d
		e.Schedule(d, func() { got = append(got, d) })
	}
	e.Run()
	want := []Cycle{0, 3, 3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d fired at delay %d, want %d (order %v)", i, got[i], want[i], got)
		}
	}
}

func TestEngineSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(4, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle events out of schedule order: %v", got)
		}
	}
}

func TestEngineClockAdvances(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		if e.Now() != 10 {
			t.Errorf("Now() = %d inside event, want 10", e.Now())
		}
		e.Schedule(5, func() {
			if e.Now() != 15 {
				t.Errorf("nested Now() = %d, want 15", e.Now())
			}
		})
	})
	end := e.Run()
	if end != 15 {
		t.Fatalf("Run() = %d, want 15", end)
	}
	if e.Fired() != 2 {
		t.Fatalf("Fired() = %d, want 2", e.Fired())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	for _, d := range []Cycle{1, 2, 30} {
		e.Schedule(d, func() { fired++ })
	}
	e.RunUntil(10)
	if fired != 2 {
		t.Fatalf("RunUntil(10) fired %d events, want 2", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 3 {
		t.Fatalf("Run() after RunUntil fired %d total, want 3", fired)
	}
}

func TestScheduleAtPastClamps(t *testing.T) {
	e := NewEngine()
	e.Schedule(20, func() {
		e.ScheduleAt(5, func() {
			if e.Now() != 20 {
				t.Errorf("past event fired at %d, want clamped to 20", e.Now())
			}
		})
	})
	e.Run()
}

// Property: for any random set of delays, events fire in nondecreasing time
// order and every event fires exactly once.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		count := int(n%64) + 1
		delays := make([]Cycle, count)
		var fireTimes []Cycle
		for i := 0; i < count; i++ {
			delays[i] = Cycle(rng.Intn(1000))
			d := delays[i]
			e.Schedule(d, func() { fireTimes = append(fireTimes, d) })
		}
		e.Run()
		if len(fireTimes) != count {
			return false
		}
		sorted := append([]Cycle(nil), delays...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range sorted {
			if fireTimes[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestServerSerializesWork(t *testing.T) {
	e := NewEngine()
	var done []Cycle
	srv := NewServer(e, "trs0", func(m int) Cycle { return 10 })
	wrapped := NewServer(e, "obs", func(m int) Cycle { return 0 })
	_ = wrapped
	// Observe completion times via a second schedule inside the handler.
	srv2 := NewServer(e, "unit", func(m int) Cycle {
		e.Schedule(10, func() { done = append(done, e.Now()) })
		return 10
	})
	for i := 0; i < 3; i++ {
		srv2.Submit(i)
	}
	e.Run()
	want := []Cycle{10, 20, 30}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion %d at %d, want %d (%v)", i, done[i], want[i], done)
		}
	}
	if srv2.Served() != 3 {
		t.Fatalf("Served() = %d, want 3", srv2.Served())
	}
	if srv2.BusyCycles() != 30 {
		t.Fatalf("BusyCycles() = %d, want 30", srv2.BusyCycles())
	}
	_ = srv
}

func TestServerSubmitAfter(t *testing.T) {
	e := NewEngine()
	var at Cycle
	srv := NewServer(e, "u", func(m string) Cycle {
		at = e.Now()
		return 5
	})
	srv.SubmitAfter(17, "x")
	e.Run()
	if at != 17 {
		t.Fatalf("message serviced at %d, want 17", at)
	}
}

func TestServerQueueStats(t *testing.T) {
	e := NewEngine()
	srv := NewServer(e, "u", func(m int) Cycle { return 100 })
	for i := 0; i < 5; i++ {
		srv.Submit(i)
	}
	e.RunUntil(0)
	if srv.MaxQueue() != 5 {
		t.Fatalf("MaxQueue() = %d, want 5", srv.MaxQueue())
	}
	e.Run()
	if srv.QueueLen() != 0 {
		t.Fatalf("QueueLen() = %d after drain, want 0", srv.QueueLen())
	}
}

// Property: a serial server processing k messages of fixed cost c finishes at
// exactly k*c regardless of submission pattern within cycle 0.
func TestServerThroughputProperty(t *testing.T) {
	f := func(k uint8, c uint8) bool {
		e := NewEngine()
		cost := Cycle(c%50) + 1
		n := int(k%32) + 1
		srv := NewServer(e, "u", func(int) Cycle { return cost })
		for i := 0; i < n; i++ {
			srv.Submit(i)
		}
		end := e.Run()
		return end == Cycle(n)*cost
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
