package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryJob(t *testing.T) {
	for _, workers := range []int{1, 4, 32} {
		var ran int64
		hit := make([]bool, 100)
		err := NewPool(workers).Do(len(hit), func(i int) error {
			atomic.AddInt64(&ran, 1)
			hit[i] = true
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if ran != int64(len(hit)) {
			t.Fatalf("workers=%d: ran %d of %d jobs", workers, ran, len(hit))
		}
		for i, h := range hit {
			if !h {
				t.Fatalf("workers=%d: job %d never ran", workers, i)
			}
		}
	}
}

func TestPoolReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	err := NewPool(8).Do(50, func(i int) error {
		switch i {
		case 7:
			return errA
		case 31:
			return errors.New("b")
		}
		return nil
	})
	if err != errA {
		t.Fatalf("got %v, want the lowest-index error", err)
	}
}

func TestPoolZeroJobs(t *testing.T) {
	if err := NewPool(4).Do(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestSinkRecordsPoints(t *testing.T) {
	var s Sink
	s.Record("x", []Label{{"k", "v"}}, map[string]float64{"m": 1})
	s.Record("y", nil, map[string]float64{"m": 2})
	pts := s.Points()
	if len(pts) != 2 || pts[0].Experiment != "x" || pts[1].Experiment != "y" {
		t.Fatalf("unexpected points: %+v", pts)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"experiment": "x"`) {
		t.Fatalf("JSON output missing point: %s", buf.String())
	}
	// A nil sink discards silently.
	var nilSink *Sink
	nilSink.Record("z", nil, nil)
	if nilSink.Points() != nil {
		t.Fatal("nil sink returned points")
	}
}

// TestParallelSweepMatchesSerial is the sweep engine's core guarantee: the
// same experiment produces byte-identical tables and recorded points at
// every worker-pool width.
func TestParallelSweepMatchesSerial(t *testing.T) {
	run := func(workers int) (string, []Point) {
		var buf bytes.Buffer
		var sink Sink
		o := Options{Quick: true, Seed: 42, Cores: 32, Workers: workers, Sink: &sink}
		if err := Fig12(&buf, o); err != nil {
			t.Fatal(err)
		}
		if err := Chains(&buf, o); err != nil {
			t.Fatal(err)
		}
		return buf.String(), sink.Points()
	}
	serialOut, serialPts := run(1)
	parallelOut, parallelPts := run(4)
	if serialOut != parallelOut {
		t.Fatalf("serial and parallel sweeps diverge:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serialOut, parallelOut)
	}
	if len(serialPts) != len(parallelPts) {
		t.Fatalf("point counts differ: %d vs %d", len(serialPts), len(parallelPts))
	}
	for i := range serialPts {
		if fmt.Sprintf("%+v", serialPts[i]) != fmt.Sprintf("%+v", parallelPts[i]) {
			t.Fatalf("point %d differs:\nserial:   %+v\nparallel: %+v",
				i, serialPts[i], parallelPts[i])
		}
	}
}
