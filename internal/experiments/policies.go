package experiments

import (
	"fmt"
	"io"
	"strconv"

	"tasksuperscalar/internal/backend"
	"tasksuperscalar/internal/workloads"
	"tasksuperscalar/tss"
)

// policyAxis returns the dispatch policies the laboratory sweeps and the
// worker-class mix applied to the hetero point (a quarter of the machine at
// double speed — enough heterogeneity for affinity to matter without
// dwarfing the baseline cores).
func policyAxis() []string { return backend.PolicyNames() }

func policyClasses(policy string, cores int) []tss.WorkerClass {
	if policy != backend.PolicyHetero {
		return nil
	}
	n := cores / 4
	if n < 1 {
		n = 1
	}
	return []tss.WorkerClass{{Name: "fast", Count: n, Speed: 2}}
}

// Policies sweeps the dispatch-policy laboratory: every built-in policy ×
// core count, reporting makespan, speedup over the stream's sequential
// lower bound, the scheduled work cycles (where heterogeneity shows), and
// the per-policy counters. It is an extension experiment (Extra): the
// paper's backend is FIFO-only, so this grid is new signal, not a figure
// reproduction, and stays out of `-experiment all`.
func Policies(w io.Writer, o Options) error {
	coreAxis := []int{32, 64, 128, 256}
	benchNames := []string{"Cholesky", "H264"}
	if o.Quick {
		coreAxis = []int{16, 32}
		benchNames = []string{"Cholesky"}
	}
	policies := policyAxis()
	var benches []workloads.Info
	for _, n := range benchNames {
		wl, _ := workloads.ByName(n)
		benches = append(benches, wl)
	}

	type cell struct {
		res *tss.Result
		sp  float64
	}
	// cells[bench][policy][cores], computed in parallel.
	cells := make([][][]cell, len(benches))
	for i := range cells {
		cells[i] = make([][]cell, len(policies))
		for j := range cells[i] {
			cells[i][j] = make([]cell, len(coreAxis))
		}
	}
	n := len(benches) * len(policies) * len(coreAxis)
	err := o.pool().Do(n, func(i int) error {
		bi := i / (len(policies) * len(coreAxis))
		rest := i % (len(policies) * len(coreAxis))
		pi := rest / len(coreAxis)
		ci := rest % len(coreAxis)
		cfg := baseConfig(coreAxis[ci])
		cfg.Policy = policies[pi]
		cfg.WorkerClasses = policyClasses(policies[pi], coreAxis[ci])
		res, sp, err := benchRun(o, benches[bi], o.budget(fullBudget(benches[bi].Name))/2, o.Seed, cfg)
		if err != nil {
			return fmt.Errorf("%s %s %dp: %w", benches[bi].Name, policies[pi], coreAxis[ci], err)
		}
		cells[bi][pi][ci] = cell{res: res, sp: sp}
		return nil
	})
	if err != nil {
		return err
	}

	for bi, wl := range benches {
		fmt.Fprintf(w, "Policy laboratory (%s): speedup over sequential by dispatch policy\n", wl.Name)
		fmt.Fprintf(w, "%-14s", "policy")
		for _, c := range coreAxis {
			fmt.Fprintf(w, " %8dp", c)
		}
		fmt.Fprintln(w)
		for pi, policy := range policies {
			fmt.Fprintf(w, "%-14s", policy)
			for ci, c := range coreAxis {
				cl := cells[bi][pi][ci]
				fmt.Fprintf(w, " %9.1f", cl.sp)
				ds := cl.res.Dispatch
				o.Sink.Record("policies", []Label{
					{"bench", wl.Name}, {"policy", policy}, {"cores", strconv.Itoa(c)},
				}, map[string]float64{
					"speedup":           cl.sp,
					"cycles":            float64(cl.res.Cycles),
					"total_work_cycles": float64(cl.res.TotalWorkCycles),
					"work_cycles":       float64(ds.WorkCycles),
					"ready_peak":        float64(ds.ReadyPeak),
					"affine_dispatches": float64(ds.AffineDispatches),
					"spec_dispatches":   float64(ds.SpecDispatches),
					"max_depth":         float64(ds.MaxDepth),
				})
			}
			fmt.Fprintln(w)
		}
		// The axes that separate the policies, one line per policy at the
		// largest machine.
		last := len(coreAxis) - 1
		for pi, policy := range policies {
			ds := cells[bi][pi][last].res.Dispatch
			fmt.Fprintf(w, "  %-12s @%dp: work %d cycles, ready peak %d",
				policy, coreAxis[last], ds.WorkCycles, ds.ReadyPeak)
			if ds.AffineDispatches > 0 {
				fmt.Fprintf(w, ", affine %d/%d", ds.AffineDispatches, ds.Dispatches)
			}
			if ds.SpecDispatches > 0 {
				fmt.Fprintf(w, ", speculated %d (validated %d)", ds.SpecDispatches, ds.SpecValidated)
			}
			if ds.MaxDepth > 0 {
				fmt.Fprintf(w, ", max chain depth %d", ds.MaxDepth)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
