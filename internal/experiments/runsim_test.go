package experiments

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"tasksuperscalar/tss"
)

// The RunSim delegation contract: a hook that executes each SimJob with the
// in-process engine must leave the rendered figure byte-identical to the
// undelegated run, and the hook must see exactly the sweep's point grid —
// this is what lets tssd resolve points through its result store without
// changing what a sweep means.
func TestRunSimHookIsByteIdentical(t *testing.T) {
	opts := func() Options { return Options{Quick: true, Seed: 42, Workers: 2} }

	var direct bytes.Buffer
	if err := Fig12(&direct, opts()); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var jobs []SimJob
	o := opts()
	o.RunSim = func(job SimJob) (*tss.Result, error) {
		mu.Lock()
		jobs = append(jobs, job)
		mu.Unlock()
		b := job.Workload.Gen(job.Tasks, job.Seed)
		return tss.RunTasks(b.Tasks, job.Config)
	}
	var hooked bytes.Buffer
	if err := Fig12(&hooked, o); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(hooked.Bytes(), direct.Bytes()) {
		t.Fatalf("hooked sweep diverged from in-process run:\n got: %s\nwant: %s", &hooked, &direct)
	}

	// Quick fig12 is 2 benchmarks x 4 TRS points x 2 ORT points.
	if len(jobs) != 16 {
		t.Fatalf("hook saw %d jobs, want 16", len(jobs))
	}
	seen := map[string]bool{}
	for _, job := range jobs {
		if job.Tasks != 600 || job.Seed != 42 {
			t.Fatalf("job carries budget %d seed %d, want 600/42", job.Tasks, job.Seed)
		}
		id := job.Workload.Name + "|" + job.Config.CanonicalString()
		if seen[id] {
			t.Fatalf("duplicate point handed to the hook: %s", id)
		}
		seen[id] = true
	}
}

// A hook failure aborts the sweep and surfaces the hook's error — a sweep
// must never render a figure with silently missing points.
func TestRunSimHookErrorAborts(t *testing.T) {
	boom := errors.New("store unreachable")
	var calls int
	var mu sync.Mutex
	o := Options{Quick: true, Seed: 42, Workers: 1}
	o.RunSim = func(job SimJob) (*tss.Result, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 3 {
			return nil, boom
		}
		b := job.Workload.Gen(job.Tasks, job.Seed)
		return tss.RunTasks(b.Tasks, job.Config)
	}
	var out bytes.Buffer
	err := Fig12(&out, o)
	if err == nil || !strings.Contains(err.Error(), boom.Error()) {
		t.Fatalf("hook error not propagated: %v", err)
	}
}

// Table I measures the workload generators and runs no simulations, so it
// must never consult the hook — the daemon relies on this when it shards
// only the sweeps that actually simulate.
func TestRunSimHookUnusedByTable1(t *testing.T) {
	o := Options{Quick: true, Seed: 42, Workers: 2}
	o.RunSim = func(SimJob) (*tss.Result, error) {
		return nil, errors.New("table1 must not simulate")
	}
	var out bytes.Buffer
	if err := Table1(&out, o); err != nil {
		t.Fatal(err)
	}
}
