package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func quickOpts() Options {
	return Options{Quick: true, Seed: 42, Cores: 64}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig12", "fig13", "fig14", "fig15", "fig16", "headline", "chains", "policies"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if _, ok := Get(id); !ok {
			t.Fatalf("Get(%q) failed", id)
		}
	}
	// Paper experiments stay in "all" (the determinism goldens hash its
	// output); laboratory extensions are Extra and excluded.
	for _, e := range reg {
		if wantExtra := e.ID == "policies"; e.Extra != wantExtra {
			t.Fatalf("experiment %s: Extra = %v, want %v", e.ID, e.Extra, wantExtra)
		}
	}
	if _, ok := Get("nosuch"); ok {
		t.Fatal("Get accepted a bogus ID")
	}
}

func TestTable1Quick(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, quickOpts()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"Cholesky", "MatMul", "FFT", "H264", "KMeans", "Knn", "PBPI", "SPECFEM", "STAP"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table 1 output missing %s:\n%s", name, out)
		}
	}
}

func TestFig12Quick(t *testing.T) {
	var buf bytes.Buffer
	o := quickOpts()
	if err := Fig12(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Cholesky") || !strings.Contains(buf.String(), "H264") {
		t.Fatalf("Fig12 output incomplete:\n%s", buf.String())
	}
}

func TestFig14Quick(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig14(&buf, quickOpts()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "16KB") {
		t.Fatalf("Fig14 output missing capacity axis:\n%s", buf.String())
	}
}

func TestFig16Quick(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig16(&buf, quickOpts()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "task-ss") || !strings.Contains(out, "software") {
		t.Fatalf("Fig16 output incomplete:\n%s", out)
	}
	if !strings.Contains(out, "Average") {
		t.Fatalf("Fig16 missing average rows:\n%s", out)
	}
}

func TestHeadlineQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := Headline(&buf, quickOpts()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "7 MB") {
		t.Fatalf("Headline missing eDRAM comparison:\n%s", buf.String())
	}
}

func TestChainsQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := Chains(&buf, quickOpts()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fragmentation") {
		t.Fatalf("Chains output incomplete:\n%s", buf.String())
	}
}

func TestPoliciesQuick(t *testing.T) {
	var buf bytes.Buffer
	sink := &Sink{}
	o := quickOpts()
	o.Sink = sink
	if err := Policies(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, policy := range []string{"fifo", "critical-path", "hetero", "spec"} {
		if !strings.Contains(out, policy) {
			t.Fatalf("Policies output missing %s row:\n%s", policy, out)
		}
	}
	if !strings.Contains(out, "affine") || !strings.Contains(out, "speculated") {
		t.Fatalf("Policies output missing per-policy counters:\n%s", out)
	}
	// quick mode: 1 bench × 4 policies × 2 core counts.
	if got := len(sink.Points()); got != 8 {
		t.Fatalf("Policies recorded %d sweep points, want 8", got)
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[uint64]string{
		512:       "512B",
		16 << 10:  "16KB",
		512 << 10: "512KB",
		6 << 20:   "6MB",
	}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Errorf("fmtBytes(%d) = %s, want %s", in, got, want)
		}
	}
}
