package experiments

import (
	"context"
	"encoding/json"
	"io"
	"runtime"
	"sync"
)

// The sweep engine: every experiment is a set of independent simulation
// jobs (one machine configuration x one workload each). Jobs run
// concurrently on a bounded worker pool, each filling a pre-assigned slot,
// and the experiment then formats its tables serially from the ordered
// slots — so the printed output (and any recorded points) are byte-for-byte
// identical whatever the worker count or completion order.

// Pool is a bounded worker pool for independent simulation jobs. It is the
// execution primitive shared by the experiment sweeps and by the tssd
// service daemon (internal/service), which runs whole submitted jobs on one.
type Pool struct {
	workers int
	ctx     context.Context // optional; cancels between jobs
}

// NewPool returns a pool of the given width; workers <= 0 uses GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// WithContext returns a copy of the pool with cooperative cancellation
// attached: once ctx is cancelled, Do stops starting new jobs (jobs already
// running finish) and the skipped slots fail with ctx.Err(). The receiver is
// left untouched, so one base pool can derive independently cancellable
// pools. Point-granular cancellation is what the tssd daemon relies on to
// abandon a sweep job between its constituent simulations.
func (p Pool) WithContext(ctx context.Context) *Pool {
	p.ctx = ctx
	return &p
}

// Workers reports the pool's width.
func (p *Pool) Workers() int { return p.workers }

// Do runs job(0..n-1) across the pool and returns the lowest-index error
// (deterministic regardless of scheduling). Every job is attempted unless
// the pool's context is cancelled, in which case unstarted jobs take the
// context's error instead.
func (p *Pool) Do(n int, job func(i int) error) error {
	if n == 0 {
		return nil
	}
	run := job
	if p.ctx != nil {
		run = func(i int) error {
			if err := p.ctx.Err(); err != nil {
				return err
			}
			return job(i)
		}
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = run(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					errs[i] = run(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Label is one axis coordinate of a sweep point, e.g. {"bench", "Cholesky"}
// or {"trs", "8"}.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Point is one aggregated sweep result: an experiment, the coordinates of
// the point, and the metric values the experiment reports there.
type Point struct {
	Experiment string             `json:"experiment"`
	Labels     []Label            `json:"labels"`
	Values     map[string]float64 `json:"values"`
}

// Sink collects sweep points for machine-readable output (cmd/tsbench
// -json). Experiments record points during their serial formatting pass, so
// the order is deterministic. A nil *Sink discards records.
type Sink struct {
	mu     sync.Mutex
	points []Point
}

// Record appends one point.
func (s *Sink) Record(experiment string, labels []Label, values map[string]float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.points = append(s.points, Point{Experiment: experiment, Labels: labels, Values: values})
}

// Points returns the recorded points in record order.
func (s *Sink) Points() []Point {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Point(nil), s.points...)
}

// WriteJSON emits the recorded points as an indented JSON array.
func (s *Sink) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Points())
}
