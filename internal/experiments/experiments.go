// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI) and provides the parallel sweep engine that drives them.
//
// Each experiment is expressed in two phases. First it enumerates its
// parameter sweep as independent jobs — one simulated machine configuration
// times one generated workload per job — and executes them on a bounded
// worker pool (Options.Workers wide, GOMAXPROCS by default; see sweep.go).
// Every job regenerates its own workload from (budget, seed), so jobs share
// no mutable state and any interleaving is safe. Second, it formats the
// paper's rows serially from the ordered result slots, which makes the
// printed tables — and the Points recorded into an optional Sink for JSON
// output — byte-for-byte identical at every worker count.
//
// The benchmark harness (bench_test.go) and cmd/tsbench both drive this
// package.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"

	"tasksuperscalar/internal/stats"
	"tasksuperscalar/internal/workloads"
	"tasksuperscalar/tss"
)

// Options scale an experiment run.
type Options struct {
	// Quick shrinks workloads and sweeps for fast iteration (used by the
	// test-suite benchmarks); the full mode reproduces the paper-scale
	// runs.
	Quick bool
	// Seed makes workload generation deterministic.
	Seed int64
	// Cores overrides the largest machine size (default 256).
	Cores int
	// Workers bounds the sweep worker pool: 0 uses GOMAXPROCS, 1 runs
	// the sweep serially. Results are identical at every width.
	Workers int
	// Shards runs every constituent simulation on the sharded engine
	// (tss.Config.Shards). Like Workers it is an observer: results are
	// identical at every shard count.
	Shards int
	// Policy, when non-empty, runs every constituent simulation under the
	// named backend dispatch policy (tss.Config.Policy). Unlike Shards it
	// is machine state: it changes results and fingerprints, making it a
	// sweepable axis rather than an observer.
	Policy string
	// Sink, when non-nil, additionally collects every aggregated sweep
	// point for machine-readable (JSON) output.
	Sink *Sink
	// Context, when non-nil, cancels the sweep cooperatively between its
	// constituent simulations (running points finish; unstarted points
	// fail with the context's error).
	Context context.Context
	// RunSim, when non-nil, executes each constituent simulation instead
	// of the in-process engine — the hook the tssd service uses to resolve
	// sweep points through its content-addressed result store and fleet.
	// The contract is strict: the returned Result must be exactly what the
	// in-process engine would produce for the same SimJob (determinism
	// makes that checkable), or the sweep's byte-identity guarantee breaks.
	RunSim func(SimJob) (*tss.Result, error)
}

// SimJob is one constituent simulation of a sweep: a deterministic workload
// generation recipe plus the machine configuration to run it on. It is the
// decomposition unit handed to Options.RunSim — everything needed to
// regenerate and execute the point anywhere.
type SimJob struct {
	// Workload generates the task stream from (Tasks, Seed).
	Workload workloads.Info
	// Tasks is the generation budget; Seed the generator seed.
	Tasks int
	Seed  int64
	// Config is the simulated machine.
	Config tss.Config
}

// DefaultOptions returns full-scale options.
func DefaultOptions() Options { return Options{Seed: 42, Cores: 256} }

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Paper string // what the paper reports, for context
	Run   func(w io.Writer, o Options) error
	// Extra marks laboratory extensions beyond the paper's evaluation:
	// they run by ID but are excluded from `-experiment all`, so the
	// committed determinism goldens (which hash the full "all" output)
	// stay pinned to the paper's figures.
	Extra bool
}

// Registry lists all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Table I: benchmark task statistics",
			"avg data size, min/med/avg runtimes, decode-rate limit for 256p", Table1, false},
		{"fig12", "Figure 12: task decode rate vs pipeline parallelism (Cholesky, H264)",
			"rate falls with #TRS; H264 slower than Cholesky; ORTs help once TRSs scale", Fig12, false},
		{"fig13", "Figure 13: average task decode rate vs pipeline parallelism",
			"average over 9 benchmarks; 128p/256p rate limits at 375/187 cycles", Fig13, false},
		{"fig14", "Figure 14: speedup vs total ORT capacity",
			"saturation at 128 KB (Cholesky) and 512 KB (H264, average)", Fig14, false},
		{"fig15", "Figure 15: speedup vs total TRS capacity",
			"Cholesky peaks by 2 MB, H264 needs 6 MB; window of 12k-50k tasks", Fig15, false},
		{"fig16", "Figure 16: speedup vs cores, hardware pipeline vs software runtime",
			"hardware 95-255x (avg 183x) at 256p; software plateaus at 32-64p except Knn/H264", Fig16, false},
		{"headline", "Headline (abstract/§VI): decode <60ns, 7MB eDRAM, tens of thousands of in-flight tasks",
			"decode rate faster than 60 ns/task; ~50k-task windows in 7 MB", Headline, false},
		{"chains", "§IV.B.2: consumer chain lengths and TRS fragmentation",
			"95% of chains <=2 for 7 benchmarks (<=7 for the other two); ~20% TRS fragmentation", Chains, false},
		{ID: "policies", Title: "Policy laboratory: dispatch policy × core-count speedup grid",
			Paper: "extension beyond the paper (its backend is FIFO-only); HTS/TWC-inspired policies",
			Run:   Policies, Extra: true},
	}
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// budget picks a per-benchmark task budget.
func (o Options) budget(full int) int {
	if o.Quick {
		q := full / 8
		if q < 600 {
			q = 600
		}
		return q
	}
	return full
}

func (o Options) cores() int {
	if o.Cores > 0 {
		return o.Cores
	}
	return 256
}

// pool returns the run's worker pool, carrying the run's cancellation
// context when one was set.
func (o Options) pool() *Pool {
	p := NewPool(o.Workers)
	if o.Context != nil {
		p = p.WithContext(o.Context)
	}
	return p
}

// fullBudget is the default paper-scale run length per benchmark. H264 gets
// a longer stream so its window-size effects manifest (its distant
// parallelism only appears across many frames).
func fullBudget(name string) int {
	if name == "H264" {
		return 36000
	}
	return 20000
}

// baseConfig is the evaluation machine: Table II CMP with the paper's
// default frontend, in trace "burst" mode (task runtimes already include
// their memory time, as in the paper's trace-driven simulator).
func baseConfig(cores int) tss.Config {
	cfg := tss.DefaultConfig().WithCores(cores)
	cfg.Memory = false
	return cfg
}

// runHW executes a build on the hardware pipeline.
func runHW(b *workloads.Build, cfg tss.Config) (*tss.Result, error) {
	return tss.RunTasks(b.Tasks, cfg)
}

// benchRun is one (workload, config) simulation job: it executes the point
// (locally, or through Options.RunSim when a delegate is installed) and
// returns the result together with the speedup over the stream's sequential
// lower bound. The speedup is derived from Result.TotalWorkCycles — for a
// complete run this equals tss.SequentialCycles of the generated stream, so
// the figure is computable from the result alone and both execution paths
// produce bit-identical numbers.
func benchRun(o Options, wl workloads.Info, budget int, seed int64, cfg tss.Config) (*tss.Result, float64, error) {
	cfg.Shards = o.Shards
	if o.Policy != "" && cfg.Policy == "" {
		cfg.Policy = o.Policy
	}
	job := SimJob{Workload: wl, Tasks: budget, Seed: seed, Config: cfg}
	var res *tss.Result
	var err error
	if o.RunSim != nil {
		res, err = o.RunSim(job)
	} else {
		b := wl.Gen(budget, seed)
		res, err = tss.RunTasks(b.Tasks, cfg)
	}
	if err != nil {
		return nil, 0, err
	}
	sp := float64(res.TotalWorkCycles) / float64(res.Cycles)
	return res, sp, nil
}

// Table1 regenerates Table I from the workload generators.
func Table1(w io.Writer, o Options) error {
	all := workloads.All()
	ms := make([]workloads.Measured, len(all))
	err := o.pool().Do(len(all), func(i int) error {
		b := all[i].Gen(o.budget(fullBudget(all[i].Name)), o.Seed)
		ms[i] = workloads.MeasureTableI(b)
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Table I: benchmark applications and task statistics (measured from generators)\n")
	fmt.Fprintf(w, "%-10s %-18s %8s | %8s %7s %7s %7s | %10s\n",
		"Name", "Class", "Tasks", "Data KB", "Min us", "Med us", "Avg us", "Rate ns/t")
	var mins stats.Sample
	for i, wl := range all {
		m := ms[i]
		fmt.Fprintf(w, "%-10s %-18s %8d | %8.0f %7.0f %7.0f %7.0f | %10.0f\n",
			wl.Name, wl.Class, m.Tasks, m.DataKBAvg, m.MinUs, m.MedUs, m.AvgUs, m.RateNs256)
		fmt.Fprintf(w, "%-10s %-18s %8s | %8.0f %7.0f %7.0f %7.0f | %10.0f  (paper)\n",
			"", "", "", wl.Paper.DataKB, wl.Paper.MinUs, wl.Paper.MedUs, wl.Paper.AvgUs, wl.Paper.RateNs)
		mins.Add(m.MinUs)
		o.Sink.Record("table1", []Label{{"bench", wl.Name}}, map[string]float64{
			"tasks": float64(m.Tasks), "data_kb_avg": m.DataKBAvg,
			"min_us": m.MinUs, "med_us": m.MedUs, "avg_us": m.AvgUs,
			"rate_ns_256": m.RateNs256,
		})
	}
	fmt.Fprintf(w, "Average of min runtimes: %.0f us -> 256p target decode rate %.0f ns/task (paper: 15 us -> 58 ns)\n",
		mins.Mean(), mins.Mean()*1000/256)
	return nil
}

// decodeSweepConfig builds a frontend with the given parallelism. The TRS
// window stays at 6 MB total; ORTs and OVTs keep a generous fixed per-module
// capacity so capacity effects (Figure 14's subject) do not pollute the
// parallelism sweep.
func decodeSweepConfig(cores, numTRS, numORT int) tss.Config {
	cfg := baseConfig(cores)
	cfg.Frontend.NumTRS = numTRS
	cfg.Frontend.NumORT = numORT
	cfg.Frontend.TRSBytesEach = (6 << 20) / uint64(numTRS)
	cfg.Frontend.ORTBytesEach = 512 << 10
	cfg.Frontend.OVTBytesEach = 512 << 10
	return cfg
}

func sweepAxes(o Options) (trs []int, orts []int) {
	if o.Quick {
		return []int{1, 4, 16, 64}, []int{1, 4}
	}
	return []int{1, 2, 4, 8, 16, 32, 64}, []int{1, 2, 4, 8}
}

// decodeRates sweeps the decode rate of the given benchmarks over the
// (#TRS, #ORT) grid in parallel, returning rates[bench][trs][ort].
func decodeRates(names []workloads.Info, o Options) ([][][]float64, error) {
	trsAxis, ortAxis := sweepAxes(o)
	rates := make([][][]float64, len(names))
	for i := range rates {
		rates[i] = make([][]float64, len(trsAxis))
		for j := range rates[i] {
			rates[i][j] = make([]float64, len(ortAxis))
		}
	}
	n := len(names) * len(trsAxis) * len(ortAxis)
	err := o.pool().Do(n, func(i int) error {
		b := i / (len(trsAxis) * len(ortAxis))
		rest := i % (len(trsAxis) * len(ortAxis))
		ti := rest / len(ortAxis)
		oi := rest % len(ortAxis)
		res, _, err := benchRun(o, names[b], o.budget(4000), o.Seed,
			decodeSweepConfig(o.cores(), trsAxis[ti], ortAxis[oi]))
		if err != nil {
			return fmt.Errorf("%s at %d TRS / %d ORT: %w",
				names[b].Name, trsAxis[ti], ortAxis[oi], err)
		}
		rates[b][ti][oi] = res.DecodeRateCycles
		return nil
	})
	return rates, err
}

// Fig12 sweeps pipeline parallelism for Cholesky and H264.
func Fig12(w io.Writer, o Options) error {
	trsAxis, ortAxis := sweepAxes(o)
	var names []workloads.Info
	for _, n := range []string{"Cholesky", "H264"} {
		wl, _ := workloads.ByName(n)
		names = append(names, wl)
	}
	rates, err := decodeRates(names, o)
	if err != nil {
		return err
	}
	for b, wl := range names {
		fmt.Fprintf(w, "Figure 12 (%s): decode rate [cycles/task]\n", wl.Name)
		fmt.Fprintf(w, "%8s", "#TRS")
		for _, nort := range ortAxis {
			fmt.Fprintf(w, " %8s", fmt.Sprintf("%d ORT", nort))
		}
		fmt.Fprintln(w)
		for ti, ntrs := range trsAxis {
			fmt.Fprintf(w, "%8d", ntrs)
			for oi, nort := range ortAxis {
				fmt.Fprintf(w, " %8.0f", rates[b][ti][oi])
				o.Sink.Record("fig12", []Label{
					{"bench", wl.Name}, {"trs", strconv.Itoa(ntrs)}, {"ort", strconv.Itoa(nort)},
				}, map[string]float64{"decode_rate_cycles": rates[b][ti][oi]})
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// Fig13 sweeps pipeline parallelism averaged over all nine benchmarks.
func Fig13(w io.Writer, o Options) error {
	trsAxis, ortAxis := sweepAxes(o)
	all := workloads.All()
	rates, err := decodeRates(all, o)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 13 (average of 9 benchmarks): decode rate [cycles/task]\n")
	fmt.Fprintf(w, "%8s", "#TRS")
	for _, nort := range ortAxis {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("%d ORT", nort))
	}
	fmt.Fprintln(w)
	for ti, ntrs := range trsAxis {
		fmt.Fprintf(w, "%8d", ntrs)
		for oi, nort := range ortAxis {
			var avg stats.Sample
			for b := range all {
				avg.Add(rates[b][ti][oi])
			}
			fmt.Fprintf(w, " %8.0f", avg.Mean())
			o.Sink.Record("fig13", []Label{
				{"trs", strconv.Itoa(ntrs)}, {"ort", strconv.Itoa(nort)},
			}, map[string]float64{"decode_rate_cycles_avg": avg.Mean()})
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "rate limits: 128 processors = 375 cycles/task, 256 processors = 187 cycles/task\n")
	return nil
}

// capacitySweep runs a speedup sweep over a frontend-capacity axis.
func capacitySweep(w io.Writer, o Options, id, title string, axis []uint64,
	configure func(cfg *tss.Config, capacity uint64), names []string) error {
	all := workloads.All()
	// speedups[cap][bench], computed in parallel.
	speedups := make([][]float64, len(axis))
	for i := range speedups {
		speedups[i] = make([]float64, len(all))
	}
	err := o.pool().Do(len(axis)*len(all), func(i int) error {
		ci, bi := i/len(all), i%len(all)
		cfg := baseConfig(o.cores())
		configure(&cfg, axis[ci])
		_, sp, err := benchRun(o, all[bi], o.budget(fullBudget(all[bi].Name)), o.Seed, cfg)
		if err != nil {
			return fmt.Errorf("%s at %s: %w", all[bi].Name, fmtBytes(axis[ci]), err)
		}
		speedups[ci][bi] = sp
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%10s", "capacity")
	for _, n := range names {
		fmt.Fprintf(w, " %9s", n)
	}
	fmt.Fprintf(w, " %9s\n", "Average")
	// The average column covers all nine benchmarks, like the paper.
	for ci, capBytes := range axis {
		fmt.Fprintf(w, "%10s", fmtBytes(capBytes))
		var allSp stats.Sample
		byName := map[string]float64{}
		for bi, wl := range all {
			allSp.Add(speedups[ci][bi])
			byName[wl.Name] = speedups[ci][bi]
			o.Sink.Record(id, []Label{
				{"capacity", fmtBytes(capBytes)}, {"bench", wl.Name},
			}, map[string]float64{"speedup": speedups[ci][bi]})
		}
		for _, n := range names {
			fmt.Fprintf(w, " %9.0f", byName[n])
		}
		fmt.Fprintf(w, " %9.0f\n", allSp.Mean())
		o.Sink.Record(id, []Label{{"capacity", fmtBytes(capBytes)}},
			map[string]float64{"speedup_avg": allSp.Mean()})
	}
	return nil
}

// Fig14 sweeps the total ORT capacity.
func Fig14(w io.Writer, o Options) error {
	axis := []uint64{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20}
	if o.Quick {
		axis = []uint64{16 << 10, 64 << 10, 256 << 10, 1 << 20}
	}
	return capacitySweep(w, o, "fig14",
		"Figure 14: speedup (over sequential) vs total ORT capacity [8 TRS / 2 ORT, 256p]",
		axis,
		func(cfg *tss.Config, capacity uint64) {
			cfg.Frontend.ORTBytesEach = capacity / uint64(cfg.Frontend.NumORT)
		},
		[]string{"Cholesky", "H264"})
}

// Fig15 sweeps the total TRS capacity.
func Fig15(w io.Writer, o Options) error {
	axis := []uint64{128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 6 << 20, 8 << 20}
	if o.Quick {
		axis = []uint64{128 << 10, 512 << 10, 2 << 20, 6 << 20}
	}
	return capacitySweep(w, o, "fig15",
		"Figure 15: speedup (over sequential) vs total TRS capacity [8 TRS / 2 ORT, 256p]",
		axis,
		func(cfg *tss.Config, capacity uint64) {
			cfg.Frontend.TRSBytesEach = capacity / uint64(cfg.Frontend.NumTRS)
		},
		[]string{"Cholesky", "H264"})
}

// Fig16 compares hardware-pipeline and software-runtime speedups at 32-256
// cores for every benchmark.
func Fig16(w io.Writer, o Options) error {
	coreAxis := []int{32, 64, 128, 256}
	if o.Quick {
		coreAxis = []int{32, 256}
	}
	all := workloads.All()
	kinds := []string{"hw", "sw"}
	// speedups[bench][kind][cores], computed in parallel.
	speedups := make([][][]float64, len(all))
	for i := range speedups {
		speedups[i] = make([][]float64, len(kinds))
		for k := range speedups[i] {
			speedups[i][k] = make([]float64, len(coreAxis))
		}
	}
	n := len(all) * len(kinds) * len(coreAxis)
	err := o.pool().Do(n, func(i int) error {
		bi := i / (len(kinds) * len(coreAxis))
		rest := i % (len(kinds) * len(coreAxis))
		ki := rest / len(coreAxis)
		ci := rest % len(coreAxis)
		cfg := baseConfig(coreAxis[ci])
		if kinds[ki] == "sw" {
			cfg.Runtime = tss.SoftwareRuntime
		}
		_, sp, err := benchRun(o, all[bi], o.budget(fullBudget(all[bi].Name)), o.Seed, cfg)
		if err != nil {
			return fmt.Errorf("%s %s %dp: %w", all[bi].Name, kinds[ki], coreAxis[ci], err)
		}
		speedups[bi][ki][ci] = sp
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Figure 16: speedup over sequential execution\n")
	fmt.Fprintf(w, "%-10s %-9s", "Benchmark", "Runtime")
	for _, c := range coreAxis {
		fmt.Fprintf(w, " %7dp", c)
	}
	fmt.Fprintln(w)
	avgAt := map[string]map[int]*stats.Sample{"hw": {}, "sw": {}}
	for _, c := range coreAxis {
		avgAt["hw"][c] = &stats.Sample{}
		avgAt["sw"][c] = &stats.Sample{}
	}
	label := func(kind string) string {
		if kind == "sw" {
			return "software"
		}
		return "task-ss"
	}
	for bi, wl := range all {
		for ki, kind := range kinds {
			fmt.Fprintf(w, "%-10s %-9s", wl.Name, label(kind))
			for ci, c := range coreAxis {
				sp := speedups[bi][ki][ci]
				avgAt[kind][c].Add(sp)
				fmt.Fprintf(w, " %8.0f", sp)
				o.Sink.Record("fig16", []Label{
					{"bench", wl.Name}, {"runtime", label(kind)}, {"cores", strconv.Itoa(c)},
				}, map[string]float64{"speedup": sp})
			}
			fmt.Fprintln(w)
		}
	}
	for _, kind := range kinds {
		fmt.Fprintf(w, "%-10s %-9s", "Average", label(kind))
		for _, c := range coreAxis {
			fmt.Fprintf(w, " %8.0f", avgAt[kind][c].Mean())
			// Aggregates carry a distinct value key and no bench label
			// (same convention as the capacity sweeps), so JSON consumers
			// grouping by bench never pick up a pseudo-benchmark.
			o.Sink.Record("fig16", []Label{
				{"runtime", label(kind)}, {"cores", strconv.Itoa(c)},
			}, map[string]float64{"speedup_avg": avgAt[kind][c].Mean()})
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Headline reproduces the abstract's claims on the default configuration.
func Headline(w io.Writer, o Options) error {
	cfg := baseConfig(o.cores())
	fe := cfg.Frontend
	eDRAM := uint64(fe.NumTRS)*fe.TRSBytesEach +
		uint64(fe.NumORT)*(fe.ORTBytesEach+fe.OVTBytesEach)
	all := workloads.All()
	type headlineRow struct {
		rateNs, speedup float64
		window          int64
	}
	rows := make([]headlineRow, len(all))
	err := o.pool().Do(len(all), func(i int) error {
		res, sp, err := benchRun(o, all[i], o.budget(fullBudget(all[i].Name)), o.Seed, cfg)
		if err != nil {
			return err
		}
		rows[i] = headlineRow{rateNs: res.DecodeRateNs(), speedup: sp, window: res.WindowMax}
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Headline: default pipeline = %d TRS + %d ORT/OVT, %s eDRAM (paper: 7 MB)\n",
		fe.NumTRS, fe.NumORT, fmtBytes(eDRAM))
	var rates, speeds stats.Sample
	var windows []int64
	for i, wl := range all {
		r := rows[i]
		rates.Add(r.rateNs)
		speeds.Add(r.speedup)
		windows = append(windows, r.window)
		fmt.Fprintf(w, "  %-10s decode %6.0f ns/task  speedup %5.0fx  window max %6d tasks\n",
			wl.Name, r.rateNs, r.speedup, r.window)
		o.Sink.Record("headline", []Label{{"bench", wl.Name}}, map[string]float64{
			"decode_ns": r.rateNs, "speedup": r.speedup, "window_max": float64(r.window),
		})
	}
	sort.Slice(windows, func(i, j int) bool { return windows[i] < windows[j] })
	fmt.Fprintf(w, "decode rate: median %.0f ns/task (paper: <60 ns avg)\n", rates.Median())
	fmt.Fprintf(w, "speedups at %dp: %.0f-%.0fx, average %.0fx (paper: 95-255x, avg 183x)\n",
		o.cores(), speeds.Min(), speeds.Max(), speeds.Mean())
	fmt.Fprintf(w, "task windows: %d-%d tasks (paper: 12,000-50,000 at 6 MB TRS)\n",
		windows[0], windows[len(windows)-1])
	return nil
}

// Chains reports consumer-chain and TRS-fragmentation statistics (§IV.B).
func Chains(w io.Writer, o Options) error {
	cfg := baseConfig(o.cores())
	all := workloads.All()
	type chainRow struct {
		fracLE2, p95, frag float64
	}
	rows := make([]chainRow, len(all))
	err := o.pool().Do(len(all), func(i int) error {
		res, _, err := benchRun(o, all[i], o.budget(fullBudget(all[i].Name))/2, o.Seed, cfg)
		if err != nil {
			return err
		}
		fs := res.Frontend
		rows[i] = chainRow{fracLE2: fs.ChainFracAtMost2, p95: fs.ChainP95, frag: fs.InternalFragmentation}
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Consumer chains and TRS storage (paper: 95%% of chains <=2 for 7 of 9; ~20%% fragmentation)\n")
	fmt.Fprintf(w, "%-10s %12s %10s %14s\n", "Benchmark", "chains<=2", "chain p95", "fragmentation")
	for i, wl := range all {
		r := rows[i]
		fmt.Fprintf(w, "%-10s %11.0f%% %10.0f %13.0f%%\n",
			wl.Name, r.fracLE2*100, r.p95, r.frag*100)
		o.Sink.Record("chains", []Label{{"bench", wl.Name}}, map[string]float64{
			"chain_frac_le2": r.fracLE2, "chain_p95": r.p95, "fragmentation": r.frag,
		})
	}
	return nil
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKB", b>>10)
	}
	return fmt.Sprintf("%dB", b)
}
