// Multigen: multiple task-generating threads (§III.B). Data is partitioned
// between threads, so tasks from different threads have no data dependencies
// and the in-order decode property holds per thread; the pipeline frontend
// interleaves the streams freely.
//
//	go run ./examples/multigen
package main

import (
	"fmt"
	"log"

	"tasksuperscalar/tss"
)

// buildPartition creates one thread's share of a blocked stencil sweep over
// its own region of the domain.
func buildPartition(base tss.Addr, rows, steps int) *tss.Program {
	p := tss.NewProgramAt(base)
	k := p.Kernel("stencil_row")
	const rowBytes = 16 << 10
	cur := make([]tss.Addr, rows)
	for i := range cur {
		cur[i] = p.Alloc(rowBytes)
	}
	for s := 0; s < steps; s++ {
		for i := 0; i < rows; i++ {
			ops := []tss.Operand{tss.InOut(cur[i], rowBytes)}
			if i > 0 {
				ops = append(ops, tss.In(cur[i-1], rowBytes))
			}
			if i < rows-1 {
				ops = append(ops, tss.In(cur[i+1], rowBytes))
			}
			p.Spawn(k, tss.Microseconds(25), ops...)
		}
	}
	return p
}

func main() {
	const threads = 4
	var parts []*tss.Program
	var total int
	for i := 0; i < threads; i++ {
		p := buildPartition(tss.Addr(0x1000_0000*(i+1)), 32, 24)
		parts = append(parts, p)
		total += p.Len()
	}
	fmt.Printf("%d generating threads, %d tasks total (disjoint domain partitions)\n",
		threads, total)

	cfg := tss.DefaultConfig().WithCores(128)
	cfg.Memory = false
	res, err := tss.RunPartitioned(parts, cfg)
	if err != nil {
		log.Fatal(err)
	}

	var work uint64
	for _, p := range parts {
		work += tss.SequentialCycles(p.Tasks())
	}
	fmt.Printf("makespan:    %d cycles on %d cores\n", res.Cycles, res.Cores)
	fmt.Printf("speedup:     %.1fx over sequential work\n", float64(work)/float64(res.Cycles))
	fmt.Printf("decode rate: %.0f ns/task across all threads\n", res.DecodeRateNs())
	fmt.Printf("window max:  %d in-flight tasks\n", res.WindowMax)
}
