// Cholesky: the paper's running example. Builds the blocked Cholesky
// decomposition of Figure 4, prints the 35-task dependency graph of Figure 1
// as DOT (for a 5x5 matrix), and runs a larger instance on 256 cores.
//
//	go run ./examples/cholesky            # stats for a 32x32-block run
//	go run ./examples/cholesky -dot > f1.dot   # Figure 1 graph
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tasksuperscalar/internal/graph"
	"tasksuperscalar/internal/workloads"
	"tasksuperscalar/tss"
)

func main() {
	dot := flag.Bool("dot", false, "emit the 5x5 Figure 1 graph as DOT and exit")
	n := flag.Int("n", 32, "matrix size in blocks")
	cores := flag.Int("cores", 256, "worker cores")
	flag.Parse()

	if *dot {
		b := workloads.CholeskyN(5, 1)
		g := graph.Build(b.Tasks, graph.Options{Renaming: true})
		if err := g.WriteDOT(os.Stdout, b.Reg); err != nil {
			log.Fatal(err)
		}
		return
	}

	b := workloads.CholeskyN(*n, 42)
	g := graph.Build(b.Tasks, graph.Options{Renaming: true})
	a := g.Analyze()
	fmt.Printf("blocked Cholesky %dx%d: %d tasks, %d dependency edges\n",
		*n, *n, a.Tasks, a.Edges)
	fmt.Printf("graph: avg parallelism %.0f, peak width %d, depth %d\n",
		a.AvgParallelism, a.PeakWidth, a.MaxDepth)

	cfg := tss.DefaultConfig().WithCores(*cores)
	cfg.Memory = false
	res, err := tss.RunTasks(b.Tasks, cfg)
	if err != nil {
		log.Fatal(err)
	}
	seq := tss.SequentialCycles(b.Tasks)
	fmt.Printf("task superscalar on %d cores: %.1fx speedup, decode %.0f ns/task, window max %d\n",
		*cores, float64(seq)/float64(res.Cycles), res.DecodeRateNs(), res.WindowMax)
}
