// Decodesweep: measures how the distributed frontend's decode rate scales
// with the number of TRS and ORT modules (the experiment behind Figures
// 12-13), using a synthetic stream built through the public API.
//
//	go run ./examples/decodesweep
package main

import (
	"fmt"
	"log"

	"tasksuperscalar/tss"
)

func build() *tss.Program {
	p := tss.NewProgram()
	k := p.Kernel("kernel")
	const blockBytes = 16 << 10
	// A strided producer/consumer mix over a pool of objects.
	pool := make([]tss.Addr, 256)
	for i := range pool {
		pool[i] = p.Alloc(blockBytes)
	}
	for i := 0; i < 6000; i++ {
		a := pool[(i*7)%len(pool)]
		b := pool[(i*13+5)%len(pool)]
		c := pool[(i*3+11)%len(pool)]
		p.Spawn(k, tss.Microseconds(40),
			tss.In(a, blockBytes), tss.In(b, blockBytes), tss.InOut(c, blockBytes))
	}
	return p
}

func main() {
	p := build()
	fmt.Printf("%6s %6s %14s %12s\n", "#TRS", "#ORT", "decode cy/task", "decode ns")
	for _, ntrs := range []int{1, 2, 4, 8, 16} {
		for _, nort := range []int{1, 2, 4} {
			cfg := tss.DefaultConfig().WithCores(256)
			cfg.Memory = false
			cfg.Frontend.NumTRS = ntrs
			cfg.Frontend.NumORT = nort
			cfg.Frontend.TRSBytesEach = (6 << 20) / uint64(ntrs)
			cfg.Frontend.ORTBytesEach = (512 << 10) / uint64(nort)
			cfg.Frontend.OVTBytesEach = (512 << 10) / uint64(nort)
			res, err := tss.Run(p, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%6d %6d %14.0f %12.0f\n",
				ntrs, nort, res.DecodeRateCycles, res.DecodeRateNs())
		}
	}
}
