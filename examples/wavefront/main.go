// Wavefront: an H264-style macroblock wavefront built through the public
// API, demonstrating the task-window effect of §VI.B: a larger TRS window
// uncovers more distant parallelism across frames. (The software runtime's
// infinite window does not help here because its serialized decoder cannot
// keep 256 cores fed — the H264 benchmark in Figure 16, with longer tasks,
// is where the infinite window wins.)
//
//	go run ./examples/wavefront
package main

import (
	"fmt"
	"log"

	"tasksuperscalar/tss"
)

// buildWavefront spawns frames of w x h blocks where each block depends on
// its west/north neighbours and on the co-located block of the previous
// frame.
func buildWavefront(frames, w, h int) *tss.Program {
	p := tss.NewProgram()
	k := p.Kernel("decode_block")
	const blockBytes = 16 << 10
	prev := make([][]tss.Addr, h)
	for f := 0; f < frames; f++ {
		cur := make([][]tss.Addr, h)
		for y := range cur {
			cur[y] = make([]tss.Addr, w)
			for x := range cur[y] {
				cur[y][x] = p.Alloc(blockBytes)
			}
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				ops := []tss.Operand{}
				if x > 0 {
					ops = append(ops, tss.In(cur[y][x-1], blockBytes))
				}
				if y > 0 {
					ops = append(ops, tss.In(cur[y-1][x], blockBytes))
				}
				if f > 0 {
					ops = append(ops, tss.In(prev[y][x], blockBytes))
				}
				ops = append(ops, tss.InOut(cur[y][x], blockBytes))
				p.Spawn(k, tss.Microseconds(100), ops...)
			}
		}
		prev = cur
	}
	return p
}

func main() {
	p := buildWavefront(12, 40, 24)
	fmt.Printf("wavefront program: %d tasks (12 frames of 40x24 blocks)\n", p.Len())

	seq := float64(tss.SequentialCycles(p.Tasks()))
	for _, windowKB := range []int{256, 1024, 6144} {
		cfg := tss.DefaultConfig().WithCores(256)
		cfg.Memory = false
		cfg.Frontend.TRSBytesEach = uint64(windowKB) << 10 / uint64(cfg.Frontend.NumTRS)
		res, err := tss.Run(p, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hardware, %4d KB TRS window: speedup %5.1fx (window max %5d tasks)\n",
			windowKB, seq/float64(res.Cycles), res.WindowMax)
	}

	cfg := tss.DefaultConfig().WithCores(256)
	cfg.Memory = false
	cfg.Runtime = tss.SoftwareRuntime
	res, err := tss.Run(p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("software runtime (infinite window): speedup %5.1fx\n", seq/float64(res.Cycles))
}
