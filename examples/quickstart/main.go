// Quickstart: annotate a small blocked computation StarSs-style, run it on
// the simulated task superscalar machine, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tasksuperscalar/tss"
)

func main() {
	// A toy blocked "axpy then reduce" program: y[i] += a*x[i] in
	// independent blocks, then a tree reduction over partial sums. The
	// programmer only annotates operand directionality — the pipeline
	// discovers the parallelism.
	p := tss.NewProgram()
	axpy := p.Kernel("axpy_block")
	reduce := p.Kernel("reduce_partial")

	const blocks = 64
	const blockBytes = 16 << 10
	xs := make([]tss.Addr, blocks)
	ys := make([]tss.Addr, blocks)
	partial := make([]tss.Addr, blocks)
	for i := range xs {
		xs[i] = p.Alloc(blockBytes)
		ys[i] = p.Alloc(blockBytes)
		partial[i] = p.Alloc(1 << 10)
	}
	sum := p.Alloc(1 << 10)

	for i := 0; i < blocks; i++ {
		p.Spawn(axpy, tss.Microseconds(20),
			tss.In(xs[i], blockBytes),
			tss.InOut(ys[i], blockBytes))
		p.Spawn(reduce, tss.Microseconds(5),
			tss.In(ys[i], blockBytes),
			tss.Out(partial[i], 1<<10))
	}
	// Final reduction folds 16 partials at a time into the sum.
	for g := 0; g < blocks; g += 16 {
		ops := []tss.Operand{}
		for i := g; i < g+16; i++ {
			ops = append(ops, tss.In(partial[i], 1<<10))
		}
		ops = append(ops, tss.InOut(sum, 1<<10))
		p.Spawn(reduce, tss.Microseconds(8), ops...)
	}

	cfg := tss.DefaultConfig().WithCores(32)
	res, err := tss.Run(p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	seqCfg := cfg
	seqCfg.Runtime = tss.Sequential
	seq, err := tss.Run(p, seqCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tasks:        %d\n", res.Tasks)
	fmt.Printf("parallel:     %d cycles on %d cores\n", res.Cycles, res.Cores)
	fmt.Printf("sequential:   %d cycles\n", seq.Cycles)
	fmt.Printf("speedup:      %.1fx\n", res.SpeedupOver(seq))
	fmt.Printf("decode rate:  %.0f ns/task\n", res.DecodeRateNs())
	fmt.Printf("task window:  up to %d in-flight tasks\n", res.WindowMax)
	fmt.Printf("renames:      %d output operands renamed by the OVT\n", res.Frontend.Renames)
}
