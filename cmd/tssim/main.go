// tssim runs one benchmark workload on one machine configuration and prints
// the run's statistics.
//
// Usage:
//
//	tssim -workload cholesky -cores 256 -tasks 20000
//	tssim -workload h264 -runtime software -cores 128
//	tssim -workload matmul -trs 4 -ort 1 -memory
//	tssim -workload fft -save fft.trace        # save the task trace
//	tssim -load fft.trace -cores 64            # replay a saved trace
//	tssim -stream -tasks 1000000 -cores 64     # stream tasks lazily
//	tssim -remote http://host:7077 -workload h264   # run on a tssd daemon
//	tssim -workload fft -cpuprofile cpu.out -memprofile mem.out  # profile the run
//
// With -stream the task stream is generated lazily (the STAP-like CPI
// stream) and executed through tss.RunStream, so memory stays bounded by
// the pipeline's in-flight window however long the stream is.
//
// With -remote the simulation is submitted to a tssd daemon (cmd/tssd)
// instead of running in-process: progress streams back live, and a repeat of
// an identical run is answered from the daemon's content-addressed result
// cache without re-simulating.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"tasksuperscalar/internal/prof"
	"tasksuperscalar/internal/service"
	"tasksuperscalar/internal/trace"
	"tasksuperscalar/internal/workloads"
	"tasksuperscalar/tss"
)

func main() {
	var (
		workload = flag.String("workload", "cholesky", "benchmark name (Table I)")
		runtime  = flag.String("runtime", "hardware", "hardware | software | sequential")
		cores    = flag.Int("cores", 256, "worker cores")
		tasks    = flag.Int("tasks", 20000, "approximate task budget")
		seed     = flag.Int64("seed", 42, "workload seed")
		numTRS   = flag.Int("trs", 8, "number of task reservation stations")
		numORT   = flag.Int("ort", 2, "number of ORT/OVT pairs")
		trsKB    = flag.Int("trskb", 768, "eDRAM per TRS (KB)")
		ortKB    = flag.Int("ortkb", 256, "eDRAM per ORT (KB)")
		memory   = flag.Bool("memory", false, "model the full memory hierarchy")
		policy   = flag.String("policy", "", "backend dispatch policy: "+strings.Join(tss.PolicyNames(), " | ")+" (default fifo)")
		classes  = flag.String("classes", "", "heterogeneous worker classes, e.g. 'fast:8@2,slow:24@0.5' or 'gpu:4@1(4,0.25)'")
		shards   = flag.Int("shards", 1, "engine shards for in-run parallelism (results are identical at any count)")
		saveTo   = flag.String("save", "", "write the generated task trace to this file and exit (.json for JSON)")
		loadFrom = flag.String("load", "", "replay a task trace from this file instead of generating")
		stream   = flag.Bool("stream", false, "generate tasks lazily and run via the streaming frontend path")
		remote   = flag.String("remote", "", "submit the run to a tssd daemon at this base URL instead of simulating locally")
		token    = flag.String("token", "", "bearer token for the remote daemon (with -remote against an authenticated tssd)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	defer prof.Start(*cpuProf, *memProf)()

	if *remote != "" {
		// A remote run is described by a job spec, not a local build;
		// reject flags that only make sense in-process.
		conflicts := map[string]string{
			"stream": "-remote submits recorded workloads only",
			"save":   "-remote does not materialize a local trace",
			"load":   "-remote regenerates the workload on the daemon",
			"shards": "-remote runs use the daemon's engine configuration",
		}
		flag.Visit(func(f *flag.Flag) {
			if why, ok := conflicts[f.Name]; ok {
				fmt.Fprintf(os.Stderr, "tssim: -%s cannot be combined with -remote (%s)\n", f.Name, why)
				os.Exit(2)
			}
		})
		runRemote(*remote, *token, *workload, *tasks, *seed, *runtime, *cores, *numTRS, *numORT, *trsKB, *ortKB, *memory,
			*policy, parseClasses(*classes))
		return
	}

	if *stream {
		// The streaming path generates its own workload and models no
		// memory hierarchy; reject flags it would otherwise silently
		// ignore.
		conflicts := map[string]string{
			"memory":   "-stream models no memory hierarchy",
			"workload": "-stream always generates the CPI stream",
			"save":     "-stream does not record a trace",
			"load":     "-stream generates tasks instead of replaying",
		}
		flag.Visit(func(f *flag.Flag) {
			if why, ok := conflicts[f.Name]; ok {
				fmt.Fprintf(os.Stderr, "tssim: -%s cannot be combined with -stream (%s)\n", f.Name, why)
				os.Exit(2)
			}
		})
		runStreaming(*tasks, *seed, *cores, *numTRS, *numORT, *trsKB, *ortKB, *runtime, *shards,
			*policy, parseClasses(*classes))
		return
	}

	var b *workloads.Build
	if *loadFrom != "" {
		f, err := os.Open(*loadFrom)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tssim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		var tr *trace.Trace
		if strings.HasSuffix(*loadFrom, ".json") {
			tr, err = trace.ReadJSON(f)
		} else {
			tr, err = trace.ReadBinary(f)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tssim: %v\n", err)
			os.Exit(1)
		}
		reg, tasks := tr.Materialize()
		b = &workloads.Build{Name: tr.Name, Reg: reg, Tasks: tasks}
	} else {
		wl, ok := workloads.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "tssim: unknown workload %q; available:\n", *workload)
			for _, w := range workloads.All() {
				fmt.Fprintf(os.Stderr, "  %-10s %s\n", w.Name, w.Description)
			}
			os.Exit(2)
		}
		b = wl.Gen(*tasks, *seed)
	}
	fmt.Println(workloads.Describe(b))
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tssim: %v\n", err)
			os.Exit(1)
		}
		tr := trace.FromTasks(b.Name, b.Reg, b.Tasks)
		if strings.HasSuffix(*saveTo, ".json") {
			err = tr.WriteJSON(f)
		} else {
			err = tr.WriteBinary(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tssim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *saveTo)
		return
	}

	cfg := tss.DefaultConfig().WithCores(*cores)
	cfg.Memory = *memory
	cfg.Policy = *policy
	cfg.WorkerClasses = parseClasses(*classes)
	cfg.Shards = *shards
	cfg.Frontend.NumTRS = *numTRS
	cfg.Frontend.NumORT = *numORT
	cfg.Frontend.TRSBytesEach = uint64(*trsKB) << 10
	cfg.Frontend.ORTBytesEach = uint64(*ortKB) << 10
	cfg.Frontend.OVTBytesEach = uint64(*ortKB) << 10
	switch *runtime {
	case "hardware":
		cfg.Runtime = tss.HardwarePipeline
	case "software":
		cfg.Runtime = tss.SoftwareRuntime
	case "sequential":
		cfg.Runtime = tss.Sequential
	default:
		fmt.Fprintf(os.Stderr, "tssim: unknown runtime %q\n", *runtime)
		os.Exit(2)
	}

	res, err := tss.RunTasks(b.Tasks, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tssim: %v\n", err)
		os.Exit(1)
	}
	seq := tss.SequentialCycles(b.Tasks)
	fmt.Printf("runtime:        %s on %d cores\n", cfg.Runtime, res.Cores)
	printPolicy(cfg, res.Dispatch)
	fmt.Printf("tasks executed: %d\n", res.Tasks)
	fmt.Printf("makespan:       %d cycles (%.2f ms at 3.2 GHz)\n",
		res.Cycles, float64(res.Cycles)/3.2e6)
	fmt.Printf("speedup:        %.1fx over sequential work (%d cycles)\n",
		float64(seq)/float64(res.Cycles), seq)
	if res.DecodeRateCycles > 0 {
		fmt.Printf("decode rate:    %.0f cycles/task (%.0f ns)\n",
			res.DecodeRateCycles, res.DecodeRateNs())
	}
	fmt.Printf("task window:    max %d in-flight tasks\n", res.WindowMax)
	fmt.Printf("utilization:    %.1f%% of cores busy (time-averaged)\n", res.Utilization*100)
	if cfg.Runtime == tss.HardwarePipeline {
		fs := res.Frontend
		fmt.Printf("frontend:       %d renames, %d copy-backs, %d in-place unblocks\n",
			fs.Renames, fs.CopyBacks, fs.InPlaceUnblocks)
		fmt.Printf("                ORT stalls %d, OVT stalls %d, fragmentation %.0f%%\n",
			fs.ORTStallEvents, fs.OVTStallEvents, fs.InternalFragmentation*100)
		fmt.Printf("utilization:    gateway %.0f%%, busiest TRS %.0f%%, ORT %.0f%%, OVT %.0f%%\n",
			fs.GatewayUtil*100, fs.TRSUtil*100, fs.ORTUtil*100, fs.OVTUtil*100)
	}
	if *memory {
		fmt.Printf("memory:         %d fetches (%d L1 object hits), %d invalidations, %d DMA copies, %.1f MB moved\n",
			res.Mem.Fetches, res.Mem.L1ObjHits, res.Mem.Invalidations, res.Mem.DMACopies,
			float64(res.Mem.BytesMoved)/(1<<20))
	}
}

// parseClasses parses the -classes flag, exiting with usage on bad syntax.
func parseClasses(s string) []tss.WorkerClass {
	wc, err := tss.ParseWorkerClasses(s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tssim: -classes: %v\n", err)
		os.Exit(2)
	}
	return wc
}

// printPolicy reports the dispatch policy and its counters. The line is
// printed only for non-default policies, so default runs keep their
// pre-policy output byte-identical (the committed determinism goldens hash
// it).
func printPolicy(cfg tss.Config, ds tss.DispatchStats) {
	p := cfg.EffectivePolicy()
	if p == tss.PolicyFIFO && len(cfg.EffectiveWorkerClasses()) == 0 {
		return
	}
	fmt.Printf("policy:         %s (%d dispatches, ready peak %d", p, ds.Dispatches, ds.ReadyPeak)
	if ds.MaxDepth > 0 {
		fmt.Printf(", max chain depth %d", ds.MaxDepth)
	}
	if ds.AffineDispatches > 0 {
		fmt.Printf(", affine %d", ds.AffineDispatches)
	}
	if ds.SpecDispatches > 0 {
		fmt.Printf(", speculated %d validated %d", ds.SpecDispatches, ds.SpecValidated)
	}
	fmt.Println(")")
	if wc := cfg.EffectiveWorkerClasses(); len(wc) > 0 {
		fmt.Printf("classes:        ")
		for i, c := range wc {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%s x%d @%gx", c.Name, c.Count, c.Speed)
		}
		fmt.Printf(" (scheduled work %d cycles)\n", ds.WorkCycles)
	}
}

// cancelRemote best-effort cancels a remote job (used on Ctrl-C: the
// interrupted context is already dead, so the DELETE rides a fresh one).
func cancelRemote(cl *service.Client, prog, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if st, err := cl.Cancel(ctx, id); err != nil {
		fmt.Fprintf(os.Stderr, "%s: interrupted; cancelling remote job %s failed: %v\n", prog, id, err)
	} else {
		fmt.Fprintf(os.Stderr, "%s: interrupted; remote job %s is %s\n", prog, id, st.Status)
	}
}

// runRemote submits the run to a tssd daemon, streams progress, and prints
// the canonical result (noting whether it was served from the result cache).
// Ctrl-C cancels the remote job cooperatively before exiting.
func runRemote(base, token, workload string, tasks int, seed int64, runtimeKind string,
	cores, numTRS, numORT, trsKB, ortKB int, memory bool, policy string, classes []tss.WorkerClass) {
	spec := &service.JobSpec{
		Kind: service.KindSim,
		Sim: &service.SimSpec{
			Workload: workload,
			Tasks:    &tasks,
			Seed:     &seed,
			Machine: service.MachineSpec{
				Runtime: runtimeKind,
				Cores:   cores,
				TRS:     numTRS,
				ORT:     numORT,
				TRSKB:   trsKB,
				ORTKB:   ortKB,
				Memory:  memory,
				Policy:  policy,
				Classes: classes,
			},
		},
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The retry policy rides through transient daemon trouble — a restart
	// mid-wait, a 503 while the queue drains — safely, because submissions
	// are content-addressed and therefore idempotent.
	cl := service.NewClient(base, service.WithToken(token),
		service.WithRetry(service.RetryPolicy{Attempts: 8, Base: 200 * time.Millisecond, Max: 5 * time.Second}))
	st, err := cl.Submit(ctx, spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tssim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("submitted %s (key %.12s…) to %s\n", st.ID, st.Key, base)
	if !st.Cached {
		id := st.ID
		st, err = cl.Wait(ctx, id, func(ev service.Event) {
			if ev.Type == "progress" {
				var p struct{ Done, Total uint64 }
				if json.Unmarshal(ev.Data, &p) == nil && p.Total > 0 {
					fmt.Printf("\rprogress:       %d/%d tasks (%.0f%%)", p.Done, p.Total,
						100*float64(p.Done)/float64(p.Total))
				}
			}
		})
		fmt.Println()
		if err != nil {
			if ctx.Err() != nil {
				cancelRemote(cl, "tssim", id)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "tssim: %v\n", err)
			os.Exit(1)
		}
		if st.Status != service.StatusDone {
			fmt.Fprintf(os.Stderr, "tssim: remote job %s: %s\n", st.Status, st.Error)
			os.Exit(1)
		}
	}
	var res service.SimResult
	if err := json.Unmarshal(st.Result, &res); err != nil {
		fmt.Fprintf(os.Stderr, "tssim: decoding result: %v\n", err)
		os.Exit(1)
	}
	source := "simulated remotely"
	if st.Cached {
		source = "served from result cache"
	}
	fmt.Printf("runtime:        %s on %d cores (%s)\n", res.Runtime, res.Cores, source)
	if res.Dispatch != nil {
		printPolicy(tss.Config{Policy: policy, WorkerClasses: classes}, *res.Dispatch)
	}
	fmt.Printf("tasks executed: %d\n", res.Tasks)
	fmt.Printf("makespan:       %d cycles (%.2f ms at 3.2 GHz)\n",
		res.Cycles, float64(res.Cycles)/3.2e6)
	fmt.Printf("speedup:        %.1fx over sequential work (%d cycles)\n",
		res.SpeedupOverWork, res.TotalWorkCycles)
	if res.DecodeRateCycles > 0 {
		fmt.Printf("decode rate:    %.0f cycles/task (%.0f ns)\n",
			res.DecodeRateCycles, tss.CyclesToNs(res.DecodeRateCycles))
	}
	fmt.Printf("task window:    max %d in-flight tasks\n", res.WindowMax)
	fmt.Printf("utilization:    %.1f%% of cores busy (time-averaged)\n", res.Utilization*100)
	if res.Mem != nil {
		fmt.Printf("memory:         %d fetches (%d L1 object hits), %d invalidations, %d DMA copies, %.1f MB moved\n",
			res.Mem.Fetches, res.Mem.L1ObjHits, res.Mem.Invalidations, res.Mem.DMACopies,
			float64(res.Mem.BytesMoved)/(1<<20))
	}
}

// runStreaming drives the lazily generated CPI stream through the
// streaming frontend path and reports the run with memory statistics.
func runStreaming(tasks int, seed int64, cores, numTRS, numORT, trsKB, ortKB int, runtimeKind string, shards int,
	policy string, classes []tss.WorkerClass) {
	cfg := tss.DefaultConfig().WithCores(cores)
	cfg.Memory = false
	cfg.Shards = shards
	// Streaming runs cannot precompute chain depths (the stream is lazy),
	// so critical-path degrades to depth-0 priority; the other policies
	// work unchanged.
	cfg.Policy = policy
	cfg.WorkerClasses = classes
	cfg.Frontend.NumTRS = numTRS
	cfg.Frontend.NumORT = numORT
	cfg.Frontend.TRSBytesEach = uint64(trsKB) << 10
	cfg.Frontend.ORTBytesEach = uint64(ortKB) << 10
	cfg.Frontend.OVTBytesEach = uint64(ortKB) << 10
	switch runtimeKind {
	case "hardware":
		cfg.Runtime = tss.HardwarePipeline
	case "software":
		cfg.Runtime = tss.SoftwareRuntime
	case "sequential":
		cfg.Runtime = tss.Sequential
	default:
		fmt.Fprintf(os.Stderr, "tssim: unknown runtime %q\n", runtimeKind)
		os.Exit(2)
	}

	fmt.Printf("streaming %d STAP-like CPI tasks (seed %d)\n", tasks, seed)
	start := time.Now()
	res, err := tss.RunStream(workloads.NewCPIStream(tasks, seed), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tssim: %v\n", err)
		os.Exit(1)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Printf("runtime:        %s on %d cores (streamed)\n", cfg.Runtime, res.Cores)
	printPolicy(cfg, res.Dispatch)
	fmt.Printf("tasks executed: %d\n", res.Tasks)
	fmt.Printf("makespan:       %d cycles (%.2f ms at 3.2 GHz)\n",
		res.Cycles, float64(res.Cycles)/3.2e6)
	if res.Cycles > 0 {
		fmt.Printf("speedup:        %.1fx over sequential work (%d cycles)\n",
			float64(res.TotalWorkCycles)/float64(res.Cycles), res.TotalWorkCycles)
	}
	if res.DecodeRateCycles > 0 {
		fmt.Printf("decode rate:    %.0f cycles/task (%.0f ns)\n",
			res.DecodeRateCycles, res.DecodeRateNs())
	}
	fmt.Printf("task window:    max %d in-flight tasks\n", res.WindowMax)
	fmt.Printf("utilization:    %.1f%% of cores busy (time-averaged)\n", res.Utilization*100)
	fmt.Printf("host:           %.1fs wall, %.1f MB heap in use\n",
		time.Since(start).Seconds(), float64(ms.HeapAlloc)/(1<<20))
}
