// tsbench regenerates the paper's tables and figures.
//
// Each experiment's parameter sweep runs as independent simulation jobs on
// a worker pool (one worker per CPU by default); the printed tables are
// byte-identical at every worker count.
//
// Usage:
//
//	tsbench -experiment all            # every table and figure (quick mode)
//	tsbench -experiment fig16 -full    # one experiment at paper scale
//	tsbench -experiment fig12 -workers 1   # force a serial sweep
//	tsbench -experiment all -json results.json  # also dump sweep points
//	tsbench -benchjson BENCH_engine.json   # substrate perf snapshot (JSON)
//	tsbench -remote http://host:7077 -experiment fig12  # run on a tssd daemon
//	tsbench -experiment fig12 -cpuprofile cpu.out  # profile an experiment
//	tsbench -list                      # show available experiments
//
// With -remote each experiment is submitted to a tssd daemon (cmd/tssd) as
// a sweep job: output lines stream back live, repeated identical runs are
// answered from the daemon's result cache, and -json still collects every
// sweep point from the returned payloads.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tasksuperscalar/internal/experiments"
	"tasksuperscalar/internal/prof"
	"tasksuperscalar/internal/service"
)

// cancelRemote best-effort cancels a remote job after an interrupt (the
// interrupted context is dead, so the DELETE rides a fresh one).
func cancelRemote(cl *service.Client, id string) {
	cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if st, err := cl.Cancel(cctx, id); err != nil {
		fmt.Fprintf(os.Stderr, "tsbench: interrupted; cancelling remote job %s failed: %v\n", id, err)
	} else {
		fmt.Fprintf(os.Stderr, "tsbench: interrupted; remote job %s is %s\n", id, st.Status)
	}
}

func main() {
	var (
		expID     = flag.String("experiment", "all", "experiment ID (or comma list, or 'all')")
		full      = flag.Bool("full", false, "run at paper scale instead of quick mode")
		list      = flag.Bool("list", false, "list experiments and exit")
		seed      = flag.Int64("seed", 42, "workload generation seed")
		cores     = flag.Int("cores", 256, "largest machine size")
		workers   = flag.Int("workers", 0, "sweep worker pool width (0 = one per CPU, 1 = serial)")
		policy    = flag.String("policy", "", "dispatch policy for every simulation that does not pin its own (default fifo)")
		shards    = flag.Int("shards", 1, "engine shards per simulation (results are identical at any count)")
		jsonOut   = flag.String("json", "", "also write every sweep point to this file as JSON")
		benchJS   = flag.String("benchjson", "", "measure substrate benches and write this JSON file, then exit")
		benchNote = flag.String("benchnote", "", "label for the -benchjson snapshot (set when the measured code changed)")
		remote    = flag.String("remote", "", "submit experiments to a tssd daemon at this base URL instead of running locally")
		token     = flag.String("token", "", "bearer token for the remote daemon (with -remote against an authenticated tssd)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	defer prof.Start(*cpuProf, *memProf)()

	if *benchJS != "" {
		if err := runBenchJSON(*benchJS, *benchNote); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.Registry() {
			extra := ""
			if e.Extra {
				extra = " (extra: excluded from 'all')"
			}
			fmt.Printf("%-9s %s%s\n          paper: %s\n", e.ID, e.Title, extra, e.Paper)
		}
		return
	}

	var sink *experiments.Sink
	if *jsonOut != "" {
		sink = &experiments.Sink{}
	}
	opts := experiments.Options{
		Quick: !*full, Seed: *seed, Cores: *cores,
		Workers: *workers, Shards: *shards, Sink: sink,
		Policy: *policy,
	}
	var ids []string
	if *expID == "all" {
		// Extra experiments (laboratory extensions) only run when named
		// explicitly; "all" stays pinned to the paper's figures so the
		// committed determinism goldens keep hashing the same output.
		for _, e := range experiments.Registry() {
			if !e.Extra {
				ids = append(ids, e.ID)
			}
		}
	} else {
		ids = strings.Split(*expID, ",")
	}

	if *remote != "" {
		// -workers keeps its meaning remotely: it sizes the sweep's
		// internal pool, just on the daemon (0 falls back to the
		// daemon's serial default rather than the client's CPU count).
		runRemote(*remote, *token, ids, *full, *seed, *cores, *workers, *policy, sink)
		writeSink(sink, *jsonOut)
		return
	}

	for _, id := range ids {
		e, ok := experiments.Get(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "tsbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "tsbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}

	writeSink(sink, *jsonOut)
}

// writeSink dumps the collected sweep points (if any were requested).
func writeSink(sink *experiments.Sink, jsonOut string) {
	if sink == nil {
		return
	}
	f, err := os.Create(jsonOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
		os.Exit(1)
	}
	err = sink.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsbench: writing %s: %v\n", jsonOut, err)
		os.Exit(1)
	}
	fmt.Printf("sweep points written to %s (%d points)\n", jsonOut, len(sink.Points()))
}

// runRemote submits each experiment to a tssd daemon as a sweep job,
// printing its output lines as they stream back and recording the returned
// sweep points into sink (for -json). Ctrl-C cancels the in-flight remote
// job cooperatively before exiting.
func runRemote(base, token string, ids []string, full bool, seed int64, cores, sweepWorkers int, policy string, sink *experiments.Sink) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Retry policy: a content-addressed API is idempotent, so riding out a
	// dispatcher restart or a transient 503 cannot double-run an experiment.
	cl := service.NewClient(base, service.WithToken(token),
		service.WithRetry(service.RetryPolicy{Attempts: 8, Base: 200 * time.Millisecond, Max: 5 * time.Second}))
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := experiments.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "tsbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		st, err := cl.Submit(ctx, &service.JobSpec{
			Kind: service.KindSweep,
			Sweep: &service.SweepSpec{
				Experiment: e.ID, Full: full, Seed: &seed, Cores: cores,
				Workers: sweepWorkers, Policy: policy,
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
			os.Exit(1)
		}
		printed := false
		if !st.Cached {
			id := st.ID
			st, err = cl.Wait(ctx, id, func(ev service.Event) {
				if ev.Type == "log" {
					var l struct{ Line string }
					if json.Unmarshal(ev.Data, &l) == nil {
						fmt.Println(l.Line)
						printed = true
					}
				}
			})
			if err != nil {
				if ctx.Err() != nil {
					cancelRemote(cl, id)
					os.Exit(130)
				}
				fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
				os.Exit(1)
			}
			if st.Status != service.StatusDone {
				fmt.Fprintf(os.Stderr, "tsbench: %s ended %s remotely: %s\n", e.ID, st.Status, st.Error)
				os.Exit(1)
			}
		}
		var res service.SweepResult
		if err := json.Unmarshal(st.Result, &res); err != nil {
			fmt.Fprintf(os.Stderr, "tsbench: decoding %s result: %v\n", e.ID, err)
			os.Exit(1)
		}
		if !printed {
			fmt.Print(res.Output)
		}
		for _, p := range res.Points {
			sink.Record(p.Experiment, p.Labels, p.Values)
		}
		suffix := ""
		if st.Cached {
			suffix = ", cached"
		}
		fmt.Printf("(%s in %.1fs remote%s)\n\n", e.ID, time.Since(start).Seconds(), suffix)
	}
}
