// tsbench regenerates the paper's tables and figures.
//
// Each experiment's parameter sweep runs as independent simulation jobs on
// a worker pool (one worker per CPU by default); the printed tables are
// byte-identical at every worker count.
//
// Usage:
//
//	tsbench -experiment all            # every table and figure (quick mode)
//	tsbench -experiment fig16 -full    # one experiment at paper scale
//	tsbench -experiment fig12 -workers 1   # force a serial sweep
//	tsbench -experiment all -json results.json  # also dump sweep points
//	tsbench -benchjson BENCH_engine.json   # substrate perf snapshot (JSON)
//	tsbench -list                      # show available experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tasksuperscalar/internal/experiments"
)

func main() {
	var (
		expID   = flag.String("experiment", "all", "experiment ID (or comma list, or 'all')")
		full    = flag.Bool("full", false, "run at paper scale instead of quick mode")
		list    = flag.Bool("list", false, "list experiments and exit")
		seed    = flag.Int64("seed", 42, "workload generation seed")
		cores   = flag.Int("cores", 256, "largest machine size")
		workers = flag.Int("workers", 0, "sweep worker pool width (0 = one per CPU, 1 = serial)")
		jsonOut = flag.String("json", "", "also write every sweep point to this file as JSON")
		benchJS = flag.String("benchjson", "", "measure substrate benches and write this JSON file, then exit")
	)
	flag.Parse()

	if *benchJS != "" {
		if err := runBenchJSON(*benchJS); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-9s %s\n          paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	var sink *experiments.Sink
	if *jsonOut != "" {
		sink = &experiments.Sink{}
	}
	opts := experiments.Options{
		Quick: !*full, Seed: *seed, Cores: *cores,
		Workers: *workers, Sink: sink,
	}
	var ids []string
	if *expID == "all" {
		for _, e := range experiments.Registry() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*expID, ",")
	}
	for _, id := range ids {
		e, ok := experiments.Get(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "tsbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "tsbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}

	if sink != nil {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
			os.Exit(1)
		}
		err = sink.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsbench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("sweep points written to %s (%d points)\n", *jsonOut, len(sink.Points()))
	}
}
