package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"tasksuperscalar/internal/benchsuite"
	"tasksuperscalar/internal/workloads"
	"tasksuperscalar/tss"
)

// The -benchjson mode measures the simulation substrate's host-time
// efficiency (ns and allocations per event / per simulated task) and
// records the numbers as machine-readable JSON, so the perf trajectory of
// the engine is tracked in-repo (BENCH_engine.json) and per-PR (the CI
// bench artifact). The measured bodies are the internal/benchsuite
// functions — exactly the code `go test -bench` runs.
//
// The file keeps the whole trajectory: "baseline" is preserved from the
// existing file (seeded once from the pre-calendar-queue engine),
// "current" is refreshed on every run, and the previous "current" is
// appended to the dated "history" array — so the per-PR progression is
// never overwritten, only extended.

type benchPoint struct {
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	TasksPerOp    float64 `json:"tasks_per_op,omitempty"`
	NsPerTask     float64 `json:"ns_per_task,omitempty"`
	AllocsPerTask float64 `json:"allocs_per_task,omitempty"`
}

type benchSnapshot struct {
	Note    string                `json:"note,omitempty"`
	Date    string                `json:"date,omitempty"` // YYYY-MM-DD of the measurement
	Go      string                `json:"go"`
	Results map[string]benchPoint `json:"results"`
}

type benchFile struct {
	Schema   string         `json:"schema"`
	Baseline *benchSnapshot `json:"baseline,omitempty"`
	Current  *benchSnapshot `json:"current"`
	// History holds every superseded "current" snapshot, oldest first;
	// each -benchjson run appends the previous current before replacing
	// it, preserving the perf trajectory across PRs.
	History []*benchSnapshot `json:"history,omitempty"`
	// PolicyComparison records the dispatch-policy laboratory on a fixed
	// reference point (Cholesky, 2000-task budget, seed 42, 64 cores; the
	// hetero row adds a fast:16@2 worker class). Unlike the host-time
	// results above these are simulated, deterministic numbers — they only
	// change when simulation semantics change, so a diff here is a
	// semantic diff, not measurement noise.
	PolicyComparison map[string]policyPoint `json:"policy_comparison,omitempty"`
}

// policyPoint is one row of the policy comparison: the makespan and the
// scheduled work under one dispatch policy.
type policyPoint struct {
	Cycles          uint64  `json:"cycles"`
	WorkCycles      uint64  `json:"work_cycles"`
	TotalWorkCycles uint64  `json:"total_work_cycles"`
	Speedup         float64 `json:"speedup"`
}

// measurePolicies runs the policy-comparison reference point for every
// built-in dispatch policy.
func measurePolicies() (map[string]policyPoint, error) {
	build := workloads.Cholesky(2000, 42)
	out := make(map[string]policyPoint, len(tss.PolicyNames()))
	for _, policy := range tss.PolicyNames() {
		cfg := tss.DefaultConfig().WithCores(64)
		cfg.Memory = false
		cfg.Policy = policy
		if policy == tss.PolicyHetero {
			cfg.WorkerClasses = []tss.WorkerClass{{Name: "fast", Count: 16, Speed: 2}}
		}
		res, err := tss.RunTasks(build.Tasks, cfg)
		if err != nil {
			return nil, fmt.Errorf("policy comparison (%s): %w", policy, err)
		}
		out[policy] = policyPoint{
			Cycles:          res.Cycles,
			WorkCycles:      res.Dispatch.WorkCycles,
			TotalWorkCycles: res.TotalWorkCycles,
			Speedup:         float64(res.TotalWorkCycles) / float64(res.Cycles),
		}
	}
	return out, nil
}

// point converts a benchmark result; per-simulated-task rates are derived
// when the bench reported a "tasks/op" metric (benchsuite.ReportPerTask).
func point(r testing.BenchmarkResult) benchPoint {
	p := benchPoint{
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
	}
	if tasks := r.Extra["tasks/op"]; tasks > 0 {
		p.TasksPerOp = tasks
		p.NsPerTask = p.NsPerOp / tasks
		p.AllocsPerTask = p.AllocsPerOp / tasks
	}
	return p
}

// runBenchJSON measures the substrate benches and writes/updates the JSON
// file at path. note labels the snapshot (use it when the measured code
// changed); an empty note records just the date and Go version.
func runBenchJSON(path, note string) error {
	results := map[string]benchPoint{
		"engine_schedule_fire":   point(testing.Benchmark(benchsuite.EngineScheduleFire)),
		"engine_schedule_pop":    point(testing.Benchmark(benchsuite.EngineSchedulePop)),
		"engine_mixed_horizons":  point(testing.Benchmark(benchsuite.EngineMixedHorizons)),
		"server_pipeline":        point(testing.Benchmark(benchsuite.ServerPipeline)),
		"frontend_decode":        point(testing.Benchmark(benchsuite.FrontendDecode)),
		"frontend_decode_shard4": point(testing.Benchmark(benchsuite.FrontendDecodeSharded)),
		"frontend_decode_critical_path": point(testing.Benchmark(
			benchsuite.FrontendDecodeCriticalPath)),
	}

	current := &benchSnapshot{
		Note:    note,
		Date:    time.Now().UTC().Format("2006-01-02"),
		Go:      runtime.Version(),
		Results: results,
	}
	out := benchFile{Schema: "tasksuperscalar-bench/v1", Current: current}
	pc, err := measurePolicies()
	if err != nil {
		return err
	}
	out.PolicyComparison = pc

	// Preserve the committed baseline and trajectory: the previous
	// "current" snapshot is appended to history rather than overwritten.
	// The one exception is a same-day rerun with the same note and Go
	// version — a re-measurement of the same change — which replaces the
	// previous current instead, so local iteration does not pollute the
	// per-PR history (distinct changes should carry distinct -benchnote
	// labels).
	if raw, err := os.ReadFile(path); err == nil {
		var prev benchFile
		if err := json.Unmarshal(raw, &prev); err != nil {
			return fmt.Errorf("tsbench: parsing existing %s: %w", path, err)
		}
		out.Baseline = prev.Baseline
		out.History = prev.History
		if c := prev.Current; c != nil &&
			!(c.Date == current.Date && c.Note == current.Note && c.Go == current.Go) {
			out.History = append(out.History, c)
		}
	}
	if out.Baseline == nil {
		seed := *current
		seed.Note = "seeded from first -benchjson run"
		out.Baseline = &seed
	}

	raw, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return err
	}

	// Human-readable summary next to the artifact.
	fd := results["frontend_decode"]
	fmt.Printf("benchjson written to %s\n", path)
	fmt.Printf("frontend decode: %.0f ns/task, %.1f allocs/task\n", fd.NsPerTask, fd.AllocsPerTask)
	for _, policy := range tss.PolicyNames() {
		p := pc[policy]
		fmt.Printf("policy %-14s %.1fx speedup, %d cycle makespan, %d work cycles\n",
			policy+":", p.Speedup, p.Cycles, p.WorkCycles)
	}
	if b := out.Baseline.Results["frontend_decode"]; b.NsPerTask > 0 {
		fmt.Printf("vs baseline:     %.0f ns/task (%+.1f%%), %.1f allocs/task (%+.1f%%)\n",
			b.NsPerTask, 100*(fd.NsPerTask-b.NsPerTask)/b.NsPerTask,
			b.AllocsPerTask, 100*(fd.AllocsPerTask-b.AllocsPerTask)/b.AllocsPerTask)
	}
	return nil
}
