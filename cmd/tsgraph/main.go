// tsgraph renders the inter-task dependency graph of a workload in Graphviz
// DOT format (Figure 1 of the paper is `tsgraph -workload cholesky -n 5`).
package main

import (
	"flag"
	"fmt"
	"os"

	"tasksuperscalar/internal/graph"
	"tasksuperscalar/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "cholesky", "benchmark name (Table I)")
		n        = flag.Int("n", 5, "problem size: Cholesky matrix blocks, or ~task budget for others")
		seed     = flag.Int64("seed", 42, "workload seed")
		renaming = flag.Bool("renaming", true, "break WaR/WaW dependencies by renaming")
		analyze  = flag.Bool("analyze", false, "print graph analytics instead of DOT")
	)
	flag.Parse()

	var b *workloads.Build
	if *workload == "cholesky" {
		b = workloads.CholeskyN(*n, *seed)
	} else {
		wl, ok := workloads.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "tsgraph: unknown workload %q\n", *workload)
			os.Exit(2)
		}
		b = wl.Gen(*n, *seed)
	}
	g := graph.Build(b.Tasks, graph.Options{Renaming: *renaming})
	if *analyze {
		a := g.Analyze()
		fmt.Printf("workload:        %s (%d tasks, %d edges)\n", b.Name, a.Tasks, a.Edges)
		fmt.Printf("total work:      %d cycles\n", a.TotalWork)
		fmt.Printf("critical path:   %d cycles\n", a.CriticalPath)
		fmt.Printf("avg parallelism: %.1f\n", a.AvgParallelism)
		fmt.Printf("peak width:      %d\n", a.PeakWidth)
		fmt.Printf("max depth:       %d\n", a.MaxDepth)
		return
	}
	if err := g.WriteDOT(os.Stdout, b.Reg); err != nil {
		fmt.Fprintf(os.Stderr, "tsgraph: %v\n", err)
		os.Exit(1)
	}
}
