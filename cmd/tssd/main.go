// tssd is the task superscalar simulation daemon: a long-running HTTP/JSON
// service that runs simulation and experiment-sweep jobs on a bounded worker
// pool and answers repeated identical submissions from a content-addressed
// result cache (deterministic runs make cached results exact, not
// approximate).
//
// Usage:
//
//	tssd                                  # listen on :7077
//	tssd -addr :8080 -workers 8           # custom port, 8 concurrent jobs
//	tssd -cache-entries 4096 -cache-mb 256
//	tssd -cache-dir /var/lib/tssd -cache-disk-mb 4096   # persistent results
//
// With -cache-dir the daemon keeps a persistent layer under the in-memory
// LRU: finished results are written as self-verifying envelope files and
// misses read through the directory, so the content-addressed result space
// survives restarts. Corrupted or foreign-version files are treated as
// misses and removed, never served.
//
// With -journal-dir the daemon additionally keeps a durable job journal:
// every accepted job is fsync'd to an append-only log before it is queued,
// and a daemon restarted on the same journal re-enqueues every job that had
// not settled — determinism plus the content-addressed store make the
// recovered results byte-identical, and work that already reached the store
// is never executed twice. Pair it with -cache-dir; see docs/SERVICE.md.
//
// Fleet mode (multi-node):
//
//	tssd -fleet -addr :7077                        # dispatcher: no local jobs
//	tssd -addr :7081 -join http://dispatcher:7077  # worker: joins the fleet
//	tssd -addr :7081 -join http://dispatcher:7077 -advertise http://worker1:7081
//
// A dispatcher exposes the same job API as a plain daemon but fans jobs out
// to joined workers, coalesces identical jobs across nodes, shares results
// through its own cache (give it -cache-dir and the whole fleet's results
// persist), and retries on another worker when one dies mid-job. Sweep jobs
// are sharded: the dispatcher decomposes the sweep into per-point sim jobs,
// fans the points across the fleet, and reassembles a byte-identical result. A worker is just a plain daemon that registers itself; -advertise
// is the URL at which the dispatcher can reach it (default derived from
// -addr with a localhost host).
//
// Submit a job:
//
//	curl -s localhost:7077/v1/jobs -d '{"kind":"sim","sim":{"workload":"cholesky","tasks":3000}}'
//	curl -N localhost:7077/v1/jobs/job-1/events      # live SSE progress
//	curl -s localhost:7077/v1/jobs/job-1/result      # canonical result JSON
//	curl -s -X DELETE localhost:7077/v1/jobs/job-1   # cooperative cancel
//	curl -s localhost:7077/stats                     # cache + pool counters
//
// The full API is documented in docs/SERVICE.md. cmd/tssim and cmd/tsbench
// can target a daemon (or a fleet dispatcher) with -remote instead of
// simulating locally.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tasksuperscalar/internal/service"
)

func main() {
	var (
		addr             = flag.String("addr", ":7077", "listen address")
		workers          = flag.Int("workers", 0, "concurrent jobs (0 = one per CPU)")
		queueDepth       = flag.Int("queue", 1024, "max queued jobs before submits get 503")
		cacheEntries     = flag.Int("cache-entries", 1024, "result cache entry bound")
		cacheMB          = flag.Int("cache-mb", 64, "result cache size bound (MiB)")
		maxJobs          = flag.Int("max-jobs", 4096, "job records retained; oldest finished jobs are evicted beyond this")
		cacheDir         = flag.String("cache-dir", "", "directory for the persistent result store (empty = in-memory cache only)")
		cacheDiskMB      = flag.Int("cache-disk-mb", 1024, "persistent store size bound (MiB); least-recently-used results are evicted beyond it")
		fleetMode        = flag.Bool("fleet", false, "run as a fleet dispatcher: jobs are fanned out to workers that register via -join (or POST /v1/workers)")
		join             = flag.String("join", "", "dispatcher base URL to join as a fleet worker")
		advertise        = flag.String("advertise", "", "base URL at which the dispatcher can reach this worker (default derived from -addr)")
		authFile         = flag.String("auth-file", "", "JSON tenant/token table; when set, every /v1 endpoint requires a bearer token (see docs/SERVICE.md)")
		token            = flag.String("token", "", "bearer token this daemon presents to other daemons (-join registration, heartbeats, and dispatch)")
		heartbeat        = flag.Duration("heartbeat", 5*time.Second, "fleet heartbeat interval: workers beat at this rate, the dispatcher ages liveness by it (0 with -join = register once, no heartbeats)")
		journalDir       = flag.String("journal-dir", "", "directory for the durable job journal; accepted jobs survive a daemon crash and are recovered on restart (empty = no journal)")
		jobTimeout       = flag.Duration("job-timeout", 0, "per-job execution deadline; a job (or sweep point) running longer fails with a deadline error (0 = no deadline)")
		dispatchRetries  = flag.Int("dispatch-retries", 0, "fleet mode: worker-level failures retried per job before it fails (0 = 4 default)")
		noWorkerWait     = flag.Duration("no-worker-wait", 0, "fleet mode: how long dispatch waits for a dispatchable worker before failing a job (0 = 30s default, negative = fail fast)")
		breakerThreshold = flag.Int("breaker-threshold", 0, "fleet mode: consecutive failures that trip a worker's circuit breaker (0 = 3 default)")
		breakerCooldown  = flag.Duration("breaker-cooldown", 0, "fleet mode: how long a tripped worker sits out before a half-open probe (0 = 5s default)")
	)
	flag.Parse()

	if *fleetMode && *join != "" {
		fmt.Fprintln(os.Stderr, "tssd: -fleet and -join are mutually exclusive (a dispatcher does not work for another dispatcher)")
		os.Exit(2)
	}
	if *advertise != "" && *join == "" {
		fmt.Fprintln(os.Stderr, "tssd: -advertise only makes sense with -join")
		os.Exit(2)
	}

	var auth *service.AuthConfig
	if *authFile != "" {
		var err error
		auth, err = service.LoadAuthFile(*authFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tssd: %v\n", err)
			os.Exit(1)
		}
	}

	srv, err := service.New(service.Config{
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		CacheEntries:      *cacheEntries,
		CacheBytes:        int64(*cacheMB) << 20,
		MaxJobs:           *maxJobs,
		Fleet:             *fleetMode,
		CacheDir:          *cacheDir,
		CacheDiskBytes:    int64(*cacheDiskMB) << 20,
		Auth:              auth,
		PeerToken:         *token,
		HeartbeatInterval: *heartbeat,
		JournalDir:        *journalDir,
		JobTimeout:        *jobTimeout,
		DispatchRetries:   *dispatchRetries,
		NoWorkerWait:      *noWorkerWait,
		BreakerThreshold:  *breakerThreshold,
		BreakerCooldown:   *breakerCooldown,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tssd: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Root context ends on SIGINT/SIGTERM; it also aborts a pending -join
	// registration loop.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *join != "" {
		self := *advertise
		if self == "" {
			self = advertiseFromAddr(*addr)
		}
		go func() {
			id, err := service.JoinFleet(ctx, *join, self, service.WithToken(*token))
			if err != nil {
				log.Printf("tssd: %v", err)
				return
			}
			log.Printf("tssd: joined fleet at %s as %s (advertised %s)", *join, id, self)
			if *heartbeat > 0 {
				// Heartbeats double as re-registration: a restarted
				// dispatcher re-learns this worker on the next beat.
				service.HeartbeatLoop(ctx, *join, self, srv.Instance(), *heartbeat, service.WithToken(*token))
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Println("tssd: shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(sctx)
		srv.Close()
	}()

	log.Printf("tssd: listening on %s (%s)", *addr, modeDesc(*fleetMode, *workers))
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "tssd: %v\n", err)
		os.Exit(1)
	}
	<-done
}

// advertiseFromAddr derives a worker's default advertise URL from its listen
// address: ":7081" → "http://localhost:7081". Cross-host fleets must pass
// -advertise explicitly.
func advertiseFromAddr(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "http://localhost" + addr
	}
	return "http://" + addr
}

func modeDesc(fleet bool, workers int) string {
	if fleet {
		return "fleet dispatcher"
	}
	if workers <= 0 {
		return "one worker per CPU"
	}
	return fmt.Sprintf("%d workers", workers)
}
