// tssd is the task superscalar simulation daemon: a long-running HTTP/JSON
// service that runs simulation and experiment-sweep jobs on a bounded worker
// pool and answers repeated identical submissions from a content-addressed
// result cache (deterministic runs make cached results exact, not
// approximate).
//
// Usage:
//
//	tssd                                  # listen on :7077
//	tssd -addr :8080 -workers 8           # custom port, 8 concurrent jobs
//	tssd -cache-entries 4096 -cache-mb 256
//
// Submit a job:
//
//	curl -s localhost:7077/v1/jobs -d '{"kind":"sim","sim":{"workload":"cholesky","tasks":3000}}'
//	curl -N localhost:7077/v1/jobs/job-1/events      # live SSE progress
//	curl -s localhost:7077/v1/jobs/job-1/result      # canonical result JSON
//	curl -s localhost:7077/stats                     # cache + pool counters
//
// The full API is documented in docs/SERVICE.md. cmd/tssim and cmd/tsbench
// can target a daemon with -remote instead of simulating locally.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tasksuperscalar/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":7077", "listen address")
		workers      = flag.Int("workers", 0, "concurrent jobs (0 = one per CPU)")
		queueDepth   = flag.Int("queue", 1024, "max queued jobs before submits get 503")
		cacheEntries = flag.Int("cache-entries", 1024, "result cache entry bound")
		cacheMB      = flag.Int("cache-mb", 64, "result cache size bound (MiB)")
		maxJobs      = flag.Int("max-jobs", 4096, "job records retained; oldest finished jobs are evicted beyond this")
	)
	flag.Parse()

	srv := service.New(service.Config{
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		CacheEntries: *cacheEntries,
		CacheBytes:   int64(*cacheMB) << 20,
		MaxJobs:      *maxJobs,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Println("tssd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Close()
	}()

	log.Printf("tssd: listening on %s (%s)", *addr, poolDesc(*workers))
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "tssd: %v\n", err)
		os.Exit(1)
	}
	<-done
}

func poolDesc(workers int) string {
	if workers <= 0 {
		return "one worker per CPU"
	}
	return fmt.Sprintf("%d workers", workers)
}
